//! The discrete-event kernel.
//!
//! Every simulated process is an OS thread that cooperates with the engine:
//! at any moment at most one process thread runs, and it is always the one
//! whose next event has the globally minimal virtual time. This serializes
//! execution completely, which makes every run bit-for-bit deterministic —
//! a property the reproduced paper *relies on* (replicated sequential
//! execution assumes deterministic sequential sections) and which makes the
//! experiments repeatable.
//!
//! Processes interact with the kernel only through [`Ctx`](crate::Ctx):
//! charging compute time, sending messages with an explicit delivery time
//! (computed by the network layer), and blocking receives. `send` never
//! yields; `recv`/`sleep` do. Local computation between yields is free in
//! wall-clock terms (no context switch) and is folded into the process clock
//! at the next yield point.
//!
//! # Event sharding and host execution modes
//!
//! Pending events live in per-*group* ordered queues (a group is normally
//! one simulated node: its application and protocol-handler processes) with
//! a lazy merge index over the group heads — see [`EventQueues`]. The global
//! pop order is exactly ascending `(time, seq)`, identical to a single heap,
//! so sharding never affects simulation results; it exists so the engine can
//! exploit *runs* of events belonging to one node.
//!
//! Two host execution modes drive that order:
//!
//! * **Serial** (default): a coordinator thread pops every event and does a
//!   channel round trip with a process thread for every resume — two host
//!   context switches per yield.
//! * **Handoff** ([`Sim::set_parallel`]): the process threads themselves
//!   drive the kernel. At a yield, the blocking process keeps *duty*: it
//!   pops and applies events inline (no switch), resumes itself without any
//!   switch, and hands duty directly to another process with a single
//!   switch — the coordinator is only involved at startup, exits and idle.
//!   Conservative lookahead from the network's minimum cross-node latency
//!   bounds how early a remote node can be affected; the engine uses it to
//!   validate the handoff windows (in debug builds) and to account for them
//!   ([`ExecCounters`]). Because duty always follows the globally minimal
//!   event, the pop order — and therefore every report field, trace entry
//!   and statistic — is bit-identical to the serial mode by construction.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::ctx::{Ctx, Resume};
use crate::error::{SimError, Stopped};
use crate::time::{Dur, SimTime};
use crate::trace::TraceEntry;

/// Identifier of a simulated process (index into the process table).
pub type Pid = usize;

/// A message in flight or in a mailbox.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending process.
    pub from: Pid,
    /// Virtual time at which the message became available to the receiver.
    pub at: SimTime,
    /// Payload.
    pub msg: M,
}

pub(crate) enum EventKind<M> {
    /// Wake a process (timer expiry or receive checkpoint). Stale if the
    /// process generation has moved on.
    Wake { pid: Pid, gen: u64 },
    /// Deliver a message into a mailbox.
    Deliver { dst: Pid, env: Envelope<M> },
}

impl<M> EventKind<M> {
    /// The process an event is routed to (and whose group queues it).
    fn target(&self) -> Pid {
        match self {
            EventKind::Wake { pid, .. } => *pid,
            EventKind::Deliver { dst, .. } => *dst,
        }
    }
}

pub(crate) struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

/// Sharded pending-event store: one ordered map per group plus a lazy merge
/// index over the group heads.
///
/// Invariant: for every non-empty group, either the merge heap contains an
/// entry carrying the group's current head key, or that head is the
/// `deferred` slot. The heap may additionally hold *stale* entries — keys
/// already consumed — which are strictly smaller than their group's live
/// head and are skipped at pop. Pops therefore always yield the global
/// minimum `(time, seq)`.
///
/// The `deferred` slot is the sprint optimization: after popping from group
/// `g`, `g`'s next head is withheld from the heap. If it is still the
/// global minimum at the next pop (true for any run of consecutive events
/// on one node), it is consumed with two `BTreeMap` operations and no heap
/// traffic at all.
struct EventQueues<M> {
    groups: Vec<BTreeMap<(SimTime, u64), EventKind<M>>>,
    heads: BinaryHeap<Reverse<((SimTime, u64), usize)>>,
    deferred: Option<((SimTime, u64), usize)>,
    /// pid → group index. Each process starts in its own group;
    /// [`Sim::assign_group`] merges the processes of one simulated node.
    group_of: Vec<usize>,
    len: usize,
    sprint_pops: u64,
}

impl<M> EventQueues<M> {
    fn new() -> Self {
        EventQueues {
            groups: Vec::new(),
            heads: BinaryHeap::new(),
            deferred: None,
            group_of: Vec::new(),
            len: 0,
            sprint_pops: 0,
        }
    }

    /// Register a new process in a fresh group of its own.
    fn add_proc(&mut self) {
        self.group_of.push(self.groups.len());
        self.groups.push(BTreeMap::new());
    }

    /// Move `pid` (and its pending events) to `group`.
    fn assign_group(&mut self, pid: Pid, group: usize) {
        while self.groups.len() <= group {
            self.groups.push(BTreeMap::new());
        }
        let old = self.group_of[pid];
        if old == group {
            return;
        }
        if let Some(d) = self.deferred.take() {
            self.heads.push(Reverse(d));
        }
        self.group_of[pid] = group;
        let moved: Vec<(SimTime, u64)> = self.groups[old]
            .iter()
            .filter(|(_, kind)| kind.target() == pid)
            .map(|(&k, _)| k)
            .collect();
        for key in moved {
            let kind = self.groups[old].remove(&key).expect("key just seen");
            self.groups[group].insert(key, kind);
        }
        // Re-announce both heads; redundant entries are skipped as stale.
        for g in [old, group] {
            if let Some((&k, _)) = self.groups[g].first_key_value() {
                self.heads.push(Reverse((k, g)));
            }
        }
    }

    fn push(&mut self, key: (SimTime, u64), kind: EventKind<M>) {
        let g = self.group_of[kind.target()];
        let new_head = self.groups[g].first_key_value().is_none_or(|(&k, _)| key < k);
        let dup = self.groups[g].insert(key, kind);
        debug_assert!(dup.is_none(), "duplicate event key");
        self.len += 1;
        if new_head {
            match self.deferred {
                // The deferred slot covered this group's old head; it must
                // track the new, smaller one.
                Some((_, dg)) if dg == g => self.deferred = Some((key, g)),
                _ => self.heads.push(Reverse((key, g))),
            }
        }
    }

    fn pop(&mut self) -> Option<Event<M>> {
        if let Some((dk, dg)) = self.deferred.take() {
            // Sprint: stale heap entries only under-estimate other groups'
            // heads, so `dk <= top` conservatively proves the deferred head
            // is still the global minimum.
            if self.heads.peek().is_none_or(|&Reverse((tk, _))| dk <= tk) {
                self.sprint_pops += 1;
                return Some(self.take(dk, dg));
            }
            self.heads.push(Reverse((dk, dg)));
        }
        loop {
            let Reverse((key, g)) = self.heads.pop()?;
            if self.groups[g].first_key_value().map(|(&k, _)| k) == Some(key) {
                return Some(self.take(key, g));
            }
            // Stale: this key was consumed earlier (or migrated); skip.
        }
    }

    fn take(&mut self, key: (SimTime, u64), g: usize) -> Event<M> {
        let kind = self.groups[g].remove(&key).expect("head vanished");
        debug_assert!(self.deferred.is_none());
        if let Some((&next, _)) = self.groups[g].first_key_value() {
            self.deferred = Some((next, g));
        }
        self.len -= 1;
        Event { time: key.0, seq: key.1, kind }
    }
}

/// What a blocked process is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Currently executing (at most one process at a time).
    Running,
    /// Waiting for a timer.
    Sleeping,
    /// Yielded for a receive; the checkpoint wake will inspect the mailbox.
    Polling { deadline: Option<SimTime> },
    /// Mailbox was empty at the checkpoint; waiting for a delivery
    /// (and possibly a timeout).
    Waiting { deadline: Option<SimTime> },
    /// Finished.
    Exited,
}

pub(crate) struct ProcSlot<M> {
    pub name: String,
    pub daemon: bool,
    pub status: Status,
    /// Bumped on every resume; wake events carry the generation at which
    /// they were scheduled so stale wakes are ignored.
    pub gen: u64,
    pub clock: SimTime,
    pub mailbox: VecDeque<Envelope<M>>,
    pub resume_tx: Sender<Resume>,
    pub panicked: bool,
}

/// How the host drives the (unchanged) global event order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecMode {
    /// Coordinator thread pops; every resume is a channel round trip.
    Serial,
    /// Yielding processes drive the kernel themselves and hand duty
    /// directly to the process they resume.
    Handoff,
}

/// Host-execution counters for one run (see the module docs). These
/// describe how the *host* drove the simulation — they are not part of the
/// simulation result and are excluded from determinism fingerprints: a
/// serial run and a handoff run of the same workload produce different
/// counters but identical reports otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Maximal bursts of consecutive events executed by one duty holder
    /// without returning to the coordinator (handoff mode only).
    pub windows: u64,
    /// Pops served straight from the last group's queue, bypassing the
    /// merge index (consecutive same-node events).
    pub sprint_pops: u64,
    /// Direct process-to-process duty transfers (one host context switch
    /// each; the serial mode pays two per resume).
    pub handoff_switches: u64,
    /// Resumes where the duty holder resumed *itself* — zero host context
    /// switches (handoff mode only).
    pub self_continues: u64,
    /// Events applied without resuming anyone (deliveries to busy
    /// processes, checkpoint wakes, stale wakes) by a duty-holding process.
    pub inline_events: u64,
}

/// What applying one event did (see [`Kernel::apply`]).
enum Resumption {
    /// `Resume::Go` was sent to another process.
    Cross,
    /// The applying process resumed itself; nothing was sent.
    SelfGo { time: SimTime, timed_out: bool },
}

/// What a [`Kernel::drain`] call ended with.
pub(crate) enum DrainOutcome {
    /// No events left while this drainer held duty.
    Empty,
    /// Duty was handed to the resumed process.
    Handoff,
    /// The draining process resumed itself (only when `me` was given).
    SelfResume { time: SimTime, timed_out: bool },
}

pub(crate) struct Kernel<M> {
    queues: EventQueues<M>,
    pub procs: Vec<ProcSlot<M>>,
    pub next_seq: u64,
    pub trace: Option<Vec<TraceEntry>>,
    /// Count of popped events, for the report.
    pub events_processed: u64,
    /// Virtual time of the last popped event.
    pub end_time: SimTime,
    pub mode: ExecMode,
    /// Conservative lookahead: the minimum virtual latency of any
    /// cross-group message, used for window validation and accounting.
    pub lookahead: Dur,
    /// True once groups were explicitly assigned (enables the lookahead
    /// check — with default per-pid groups, same-node traffic crosses
    /// groups at zero latency and the check would be meaningless).
    grouped: bool,
    pub exec: ExecCounters,
}

impl<M> Kernel<M> {
    pub(crate) fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        #[cfg(debug_assertions)]
        self.assert_lookahead(time, &kind);
        self.queues.push((time, seq), kind);
    }

    /// Validate the conservative-lookahead contract: a running process can
    /// only affect *another* node at least `lookahead` of virtual time in
    /// the future. This is what makes a duty holder's window safe — no
    /// cross-node event can appear under its feet — and it holds because
    /// the network model charges at least the minimum cross-node latency
    /// on every inter-node message.
    #[cfg(debug_assertions)]
    fn assert_lookahead(&self, time: SimTime, kind: &EventKind<M>) {
        if !self.grouped || self.lookahead == Dur::ZERO {
            return;
        }
        let EventKind::Deliver { dst, env } = kind else { return };
        if self.queues.group_of[env.from] == self.queues.group_of[*dst] {
            return;
        }
        debug_assert!(
            time >= self.end_time + self.lookahead,
            "cross-group delivery inside the lookahead window: at {time:?}, \
             kernel at {:?}, lookahead {:?}",
            self.end_time,
            self.lookahead
        );
    }

    pub(crate) fn bump_gen(&mut self, pid: Pid) -> u64 {
        self.procs[pid].gen += 1;
        self.procs[pid].gen
    }

    /// Pop the globally next event and do the per-event bookkeeping.
    fn pop_next(&mut self) -> Option<Event<M>> {
        let ev = self.queues.pop()?;
        debug_assert!(ev.time >= self.end_time, "kernel time went backwards");
        self.end_time = self.end_time.max(ev.time);
        self.events_processed += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry::from_event(&ev));
        }
        Some(ev)
    }

    /// Apply a popped event. Returns what resumption, if any, it caused;
    /// `me` is the applying process (duty holder), which is resumed in
    /// place instead of through its channel.
    fn apply(&mut self, ev: Event<M>, me: Option<Pid>) -> Option<Resumption> {
        match ev.kind {
            EventKind::Wake { pid, gen } => {
                let slot = &self.procs[pid];
                if slot.gen != gen
                    || slot.status == Status::Exited
                    || slot.status == Status::Running
                {
                    return None; // stale wake
                }
                match slot.status {
                    Status::Sleeping => Some(self.resume(pid, ev.time, false, me)),
                    Status::Polling { deadline } => {
                        if !self.procs[pid].mailbox.is_empty() {
                            Some(self.resume(pid, ev.time, false, me))
                        } else if deadline == Some(ev.time) {
                            // Zero-length timeout: the checkpoint *is* the
                            // deadline.
                            Some(self.resume(pid, ev.time, true, me))
                        } else {
                            self.procs[pid].status = Status::Waiting { deadline };
                            None
                        }
                    }
                    Status::Waiting { deadline } => {
                        // Only the deadline wake is still live for a waiter.
                        debug_assert_eq!(deadline, Some(ev.time));
                        Some(self.resume(pid, ev.time, true, me))
                    }
                    Status::Running | Status::Exited => None,
                }
            }
            EventKind::Deliver { dst, env } => {
                let slot = &mut self.procs[dst];
                if slot.status == Status::Exited {
                    return None; // message to a dead process is dropped
                }
                slot.mailbox.push_back(env);
                match slot.status {
                    Status::Waiting { .. } => Some(self.resume(dst, ev.time, false, me)),
                    _ => None,
                }
            }
        }
    }

    fn resume(&mut self, pid: Pid, time: SimTime, timed_out: bool, me: Option<Pid>) -> Resumption {
        let slot = &mut self.procs[pid];
        debug_assert!(slot.clock <= time, "process resumed into its past");
        slot.gen += 1; // invalidate any other pending wakes
        slot.status = Status::Running;
        slot.clock = time;
        if me == Some(pid) {
            Resumption::SelfGo { time, timed_out }
        } else {
            slot.resume_tx.send(Resume::Go { time, timed_out }).expect("process thread vanished");
            Resumption::Cross
        }
    }

    /// Drive the kernel while holding duty: pop and apply events until one
    /// resumes a process (duty moves to it) or the queue runs dry. `me` is
    /// the duty-holding process, or `None` for the coordinator.
    pub(crate) fn drain(&mut self, me: Option<Pid>) -> DrainOutcome {
        let mut popped = false;
        loop {
            let Some(ev) = self.pop_next() else {
                if popped {
                    self.exec.windows += 1;
                }
                return DrainOutcome::Empty;
            };
            popped = true;
            match self.apply(ev, me) {
                None => self.exec.inline_events += 1,
                Some(Resumption::SelfGo { time, timed_out }) => {
                    self.exec.windows += 1;
                    self.exec.self_continues += 1;
                    return DrainOutcome::SelfResume { time, timed_out };
                }
                Some(Resumption::Cross) => {
                    self.exec.windows += 1;
                    self.exec.handoff_switches += 1;
                    return DrainOutcome::Handoff;
                }
            }
        }
    }
}

/// Control messages from process threads back to the engine.
pub(crate) enum Ctrl {
    /// The process blocked (its slot describes on what). Serial mode only.
    Yielded(Pid),
    /// A duty-holding process found the event queue empty (handoff mode):
    /// duty returns to the coordinator for the termination check.
    Idle(Pid),
    /// The process function returned or unwound.
    Exited(Pid, /*panicked*/ bool),
}

/// Summary of a completed simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Virtual time of the last processed event.
    pub end_time: SimTime,
    /// Final virtual clock of every process, by name.
    pub proc_clocks: Vec<(String, SimTime)>,
    /// Total number of kernel events processed.
    pub events_processed: u64,
    /// Event trace, if recording was enabled with [`Sim::record_trace`].
    pub trace: Option<Vec<TraceEntry>>,
    /// Messages still sitting in process mailboxes when the run ended,
    /// as `(process name, count)` for each non-empty mailbox. A quiescent
    /// protocol leaves this empty; a wedged recovery path shows up here as
    /// undelivered traffic.
    pub mailbox_backlog: Vec<(String, usize)>,
    /// How the host drove the run (context-switch economy). Not part of
    /// the simulation result: excluded from determinism fingerprints.
    pub exec: ExecCounters,
}

/// A simulation under construction and its runner.
///
/// `M` is the message payload type exchanged between processes.
///
/// ```
/// use repseq_sim::{Sim, Dur};
///
/// let mut sim = Sim::<&'static str>::new();
/// let ping = sim.spawn("ping", |ctx| {
///     ctx.send(1, "hello", ctx.now() + Dur::from_micros(10));
///     Ok(())
/// });
/// assert_eq!(ping, 0);
/// sim.spawn("pong", |ctx| {
///     let env = ctx.recv()?;
///     assert_eq!(env.msg, "hello");
///     assert_eq!(env.at.nanos(), 10_000);
///     Ok(())
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time.nanos(), 10_000);
/// ```
pub struct Sim<M: Send + 'static> {
    kernel: Arc<Mutex<Kernel<M>>>,
    ctrl_tx: Sender<Ctrl>,
    ctrl_rx: Receiver<Ctrl>,
    threads: Vec<Option<JoinHandle<()>>>,
    record_trace: bool,
}

impl<M: Send + 'static> Default for Sim<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Send + 'static> Sim<M> {
    /// Create an empty simulation.
    pub fn new() -> Self {
        let (ctrl_tx, ctrl_rx) = unbounded();
        Sim {
            kernel: Arc::new(Mutex::new(Kernel {
                queues: EventQueues::new(),
                procs: Vec::new(),
                next_seq: 0,
                trace: None,
                events_processed: 0,
                end_time: SimTime::ZERO,
                mode: ExecMode::Serial,
                lookahead: Dur::ZERO,
                grouped: false,
                exec: ExecCounters::default(),
            })),
            ctrl_tx,
            ctrl_rx,
            threads: Vec::new(),
            record_trace: false,
        }
    }

    /// Record an event trace in the report (used by determinism tests).
    pub fn record_trace(&mut self, on: bool) {
        self.record_trace = on;
    }

    /// Switch the run to the duty-handoff execution mode when `threads`
    /// is 2 or more (1 keeps the serial coordinator loop). `lookahead`
    /// must be a lower bound on the virtual latency of any message between
    /// processes of different groups — pass the network's minimum
    /// cross-node latency. The simulation *result* is bit-identical either
    /// way; only the host scheduling (and [`SimReport::exec`]) changes.
    pub fn set_parallel(&mut self, threads: usize, lookahead: Dur) {
        let mut k = self.kernel.lock();
        k.mode = if threads >= 2 { ExecMode::Handoff } else { ExecMode::Serial };
        k.lookahead = lookahead;
    }

    /// Put `pid` into scheduling group `group`. Processes of one simulated
    /// node (its application and its protocol handler) should share a
    /// group: their mutual traffic has zero latency, while cross-group
    /// traffic is bounded below by the lookahead.
    pub fn assign_group(&mut self, pid: Pid, group: usize) {
        let mut k = self.kernel.lock();
        k.queues.assign_group(pid, group);
        k.grouped = true;
    }

    /// Spawn a primary process. The simulation ends when every primary
    /// process has exited.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(Ctx<M>) -> Result<(), Stopped> + Send + 'static,
    {
        self.spawn_inner(name, false, f)
    }

    /// Spawn a daemon process (e.g. a protocol request handler). Daemons are
    /// stopped automatically once all primary processes exit: their pending
    /// blocking call returns [`Stopped`].
    pub fn spawn_daemon<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(Ctx<M>) -> Result<(), Stopped> + Send + 'static,
    {
        self.spawn_inner(name, true, f)
    }

    fn spawn_inner<F>(&mut self, name: &str, daemon: bool, f: F) -> Pid
    where
        F: FnOnce(Ctx<M>) -> Result<(), Stopped> + Send + 'static,
    {
        let (resume_tx, resume_rx) = unbounded();
        let pid = {
            let mut k = self.kernel.lock();
            let pid = k.procs.len();
            k.procs.push(ProcSlot {
                name: name.to_string(),
                daemon,
                status: Status::Sleeping,
                gen: 0,
                clock: SimTime::ZERO,
                mailbox: VecDeque::new(),
                resume_tx,
                panicked: false,
            });
            k.queues.add_proc();
            // Initial wake at t=0 so the process starts when the engine runs.
            k.push_event(SimTime::ZERO, EventKind::Wake { pid, gen: 0 });
            pid
        };
        let ctx = Ctx::new(pid, Arc::clone(&self.kernel), self.ctrl_tx.clone(), resume_rx);
        let ctrl_tx = self.ctrl_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                // Wait for the first resume before touching anything.
                match ctx.wait_first_resume() {
                    Ok(()) => {
                        let guard = ExitGuard { pid, ctrl_tx: ctrl_tx.clone(), armed: true };
                        let _ = f(ctx);
                        guard.disarm_and_exit();
                    }
                    Err(Stopped) => {
                        let _ = ctrl_tx.send(Ctrl::Exited(pid, false));
                    }
                }
            })
            .expect("failed to spawn simulation thread");
        self.threads.push(Some(handle));
        pid
    }

    /// Run the simulation to completion.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        if self.record_trace {
            self.kernel.lock().trace = Some(Vec::new());
        }
        let (n_primary, mode) = {
            let k = self.kernel.lock();
            (k.procs.iter().filter(|p| !p.daemon).count(), k.mode)
        };
        if n_primary == 0 {
            return Err(SimError::NoPrimaryProcesses);
        }
        let result = match mode {
            ExecMode::Serial => self.event_loop_serial(n_primary),
            ExecMode::Handoff => self.event_loop_handoff(n_primary),
        };

        // Stop remaining processes (daemons, or everyone on error).
        self.stop_remaining();
        let join_err = self.join_threads();

        let mut k = self.kernel.lock();
        k.exec.sprint_pops = k.queues.sprint_pops;
        let report = SimReport {
            end_time: k.end_time,
            proc_clocks: k.procs.iter().map(|p| (p.name.clone(), p.clock)).collect(),
            events_processed: k.events_processed,
            trace: k.trace.take(),
            mailbox_backlog: k
                .procs
                .iter()
                .filter(|p| !p.mailbox.is_empty())
                .map(|p| (p.name.clone(), p.mailbox.len()))
                .collect(),
            exec: k.exec,
        };
        drop(k);

        match result {
            Ok(()) => {
                if let Some(e) = join_err {
                    return Err(e);
                }
                Ok(report)
            }
            Err(e) => Err(e),
        }
    }

    /// The classic coordinator loop: pop one event at a time; on a resume,
    /// wait for the process to yield back.
    fn event_loop_serial(&mut self, n_primary: usize) -> Result<(), SimError> {
        let mut live_primary = n_primary;
        loop {
            // Pop the next event (earliest virtual time).
            let action = {
                let mut k = self.kernel.lock();
                match k.pop_next() {
                    None => {
                        // No events left: either everything exited, or the
                        // remaining processes are deadlocked waiting for
                        // messages that will never arrive.
                        if live_primary == 0 {
                            return Ok(());
                        }
                        return Err(SimError::Deadlock { blocked: Self::blocked_procs(&k) });
                    }
                    Some(ev) => k.apply(ev, None),
                }
            };
            // If the event resumed a process, run it until it yields/exits.
            if let Some(Resumption::Cross) = action {
                match self.ctrl_rx.recv().expect("all process threads vanished") {
                    Ctrl::Yielded(_) => {}
                    Ctrl::Idle(_) => unreachable!("Idle is never sent in serial mode"),
                    Ctrl::Exited(xpid, panicked) => {
                        if let Some(end) = self.note_exit(xpid, panicked, &mut live_primary) {
                            return end;
                        }
                    }
                }
            }
        }
    }

    /// The duty-handoff loop: the coordinator only seeds the run and takes
    /// duty back at exits and idles; between those, the process threads
    /// drive the kernel themselves (see [`Kernel::drain`] and
    /// [`Ctx`](crate::Ctx)'s blocking path).
    fn event_loop_handoff(&mut self, n_primary: usize) -> Result<(), SimError> {
        let mut live_primary = n_primary;
        loop {
            let outcome = self.kernel.lock().drain(None);
            match outcome {
                DrainOutcome::SelfResume { .. } => {
                    unreachable!("the coordinator cannot resume itself")
                }
                DrainOutcome::Empty => {
                    if live_primary == 0 {
                        return Ok(());
                    }
                    let k = self.kernel.lock();
                    return Err(SimError::Deadlock { blocked: Self::blocked_procs(&k) });
                }
                DrainOutcome::Handoff => {
                    // Duty circulates among the process threads now; it
                    // comes back with an exit or an idle notification.
                    match self.ctrl_rx.recv().expect("all process threads vanished") {
                        Ctrl::Yielded(_) => unreachable!("Yielded is never sent in handoff mode"),
                        Ctrl::Idle(_) => {}
                        Ctrl::Exited(xpid, panicked) => {
                            if let Some(end) = self.note_exit(xpid, panicked, &mut live_primary) {
                                return end;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Record a process exit. Returns `Some(final result)` when the run is
    /// over (a panic, or the last primary exiting), `None` to keep going.
    fn note_exit(
        &mut self,
        xpid: Pid,
        panicked: bool,
        live_primary: &mut usize,
    ) -> Option<Result<(), SimError>> {
        let mut k = self.kernel.lock();
        let slot = &mut k.procs[xpid];
        slot.status = Status::Exited;
        slot.panicked = panicked;
        if !slot.daemon {
            *live_primary -= 1;
        }
        let name = slot.name.clone();
        drop(k);
        if panicked {
            return Some(Err(SimError::ProcessPanicked { pid: xpid, name }));
        }
        if *live_primary == 0 {
            return Some(Ok(()));
        }
        None
    }

    fn blocked_procs(k: &Kernel<M>) -> Vec<(Pid, String)> {
        k.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.status != Status::Exited && !p.daemon)
            .map(|(i, p)| (i, format!("{} ({:?})", p.name, p.status)))
            .collect()
    }

    fn stop_remaining(&mut self) {
        // Every remaining process is blocked (none can be Running here).
        // Send Stop; a stopped process may yield a few more times while
        // unwinding through nested calls, so keep answering Stop until it
        // exits. Unwinding yields must go through the serial path — a
        // stopping process must not pick duty back up.
        let pending: Vec<Pid> = {
            let mut k = self.kernel.lock();
            k.mode = ExecMode::Serial;
            k.procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.status != Status::Exited)
                .map(|(i, _)| i)
                .collect()
        };
        let mut outstanding = pending.len();
        {
            let k = self.kernel.lock();
            for &pid in &pending {
                let _ = k.procs[pid].resume_tx.send(Resume::Stop);
            }
        }
        // Drain control messages until all stopped processes have exited.
        let mut fuel: u64 = 1_000_000;
        while outstanding > 0 && fuel > 0 {
            fuel -= 1;
            match self.ctrl_rx.recv() {
                Ok(Ctrl::Exited(pid, panicked)) => {
                    let mut k = self.kernel.lock();
                    k.procs[pid].status = Status::Exited;
                    k.procs[pid].panicked = panicked;
                    outstanding -= 1;
                }
                Ok(Ctrl::Yielded(pid)) | Ok(Ctrl::Idle(pid)) => {
                    // A stopping process yielded again; answer Stop again.
                    let k = self.kernel.lock();
                    let _ = k.procs[pid].resume_tx.send(Resume::Stop);
                }
                Err(_) => break,
            }
        }
    }

    fn join_threads(&mut self) -> Option<SimError> {
        let mut err = None;
        for (pid, h) in self.threads.iter_mut().enumerate() {
            if let Some(h) = h.take() {
                if h.join().is_err() && err.is_none() {
                    let name = self.kernel.lock().procs[pid].name.clone();
                    err = Some(SimError::ProcessPanicked { pid, name });
                }
            }
        }
        err
    }
}

impl<M: Send + 'static> Drop for Sim<M> {
    /// Stop and join any process threads still alive (covers simulations
    /// that are dropped without being run; after `run` this is a no-op).
    fn drop(&mut self) {
        {
            let mut k = self.kernel.lock();
            k.mode = ExecMode::Serial;
            for p in &k.procs {
                if p.status != Status::Exited {
                    let _ = p.resume_tx.send(Resume::Stop);
                }
            }
        }
        // Answer any further yields from unwinding processes with Stop.
        loop {
            match self.ctrl_rx.try_recv() {
                Ok(Ctrl::Yielded(pid)) | Ok(Ctrl::Idle(pid)) => {
                    let k = self.kernel.lock();
                    let _ = k.procs[pid].resume_tx.send(Resume::Stop);
                }
                Ok(Ctrl::Exited(..)) => {}
                Err(_) => {
                    if self.threads.iter().all(|t| t.is_none()) {
                        break;
                    }
                    // Join whatever we can; threads answered with Stop will
                    // exit promptly.
                    let mut progressed = false;
                    for h in self.threads.iter_mut() {
                        if let Some(handle) = h.take() {
                            if handle.is_finished() {
                                let _ = handle.join();
                                progressed = true;
                            } else {
                                *h = Some(handle);
                            }
                        }
                    }
                    if !progressed {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}

/// Sends `Exited` when a process function unwinds.
struct ExitGuard {
    pid: Pid,
    ctrl_tx: Sender<Ctrl>,
    armed: bool,
}

impl ExitGuard {
    fn disarm_and_exit(mut self) {
        self.armed = false;
        let _ = self.ctrl_tx.send(Ctrl::Exited(self.pid, false));
    }
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.ctrl_tx.send(Ctrl::Exited(self.pid, true));
        }
    }
}
