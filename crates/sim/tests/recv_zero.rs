//! `Ctx::recv_timeout(Dur::ZERO)` must behave *exactly* like
//! `Ctx::try_recv` under the mailbox fast path: the same envelope at the
//! same virtual time, no extra checkpoint event in the kernel trace — in
//! both the serial coordinator loop and the duty-handoff exec mode.

use std::sync::{Arc, Mutex};

use repseq_sim::{Dur, Sim, SimReport};

/// Drive a producer/poller pair where the poller drains its mailbox with
/// either `recv_timeout(Dur::ZERO)` or `try_recv`, logging every poll
/// outcome with its virtual time. The two variants must be bit-identical.
fn poll_run(zero_timeout: bool, handoff: bool) -> (SimReport, Vec<String>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let log2 = Arc::clone(&log);
    let mut sim = Sim::<u32>::new();
    sim.record_trace(true);
    sim.spawn("producer", |ctx| {
        for i in 0..4u32 {
            ctx.send(1, i, ctx.now() + Dur::from_micros(10 * (i as u64 + 1)));
        }
        Ok(())
    });
    sim.spawn("poller", move |ctx| {
        let mut got = 0;
        while got < 4 {
            let polled = if zero_timeout { ctx.recv_timeout(Dur::ZERO)? } else { ctx.try_recv()? };
            match polled {
                Some(env) => {
                    got += 1;
                    log2.lock().unwrap().push(format!(
                        "{:?}: got {} from {} sent-at {:?}",
                        ctx.now(),
                        env.msg,
                        env.from,
                        env.at
                    ));
                }
                None => {
                    log2.lock().unwrap().push(format!("{:?}: empty", ctx.now()));
                    // Advance virtual time between empty polls so the
                    // producer's staggered sends become due.
                    ctx.sleep(Dur::from_micros(3))?;
                }
            }
        }
        Ok(())
    });
    if handoff {
        sim.set_parallel(2, Dur::from_micros(1));
        sim.assign_group(0, 0);
        sim.assign_group(1, 1);
    }
    let report = sim.run().unwrap();
    let log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
    (report, log)
}

fn assert_identical(handoff: bool) {
    let (r_try, log_try) = poll_run(false, handoff);
    let (r_zero, log_zero) = poll_run(true, handoff);
    assert_eq!(log_try, log_zero, "poll outcomes must match (handoff={handoff})");
    // The poller observed both empty polls and queued-message pops.
    assert!(log_try.iter().any(|l| l.contains("empty")), "{log_try:?}");
    assert!(log_try.iter().any(|l| l.contains("got")), "{log_try:?}");
    assert_eq!(r_try.end_time, r_zero.end_time);
    assert_eq!(r_try.proc_clocks, r_zero.proc_clocks);
    // No extra checkpoint event for the zero-timeout variant: identical
    // event count and identical kernel pop order.
    assert_eq!(r_try.events_processed, r_zero.events_processed);
    assert_eq!(r_try.trace, r_zero.trace, "kernel traces must match (handoff={handoff})");
}

#[test]
fn recv_timeout_zero_equals_try_recv_serial() {
    assert_identical(false);
}

#[test]
fn recv_timeout_zero_equals_try_recv_handoff() {
    assert_identical(true);
}

/// A message already queued in the mailbox is popped by
/// `recv_timeout(Dur::ZERO)` through the same fast path as `try_recv`:
/// same envelope, and virtual time does not move.
#[test]
fn queued_message_pops_at_current_time_in_both_modes() {
    for handoff in [false, true] {
        for zero_timeout in [false, true] {
            let mut sim = Sim::<u32>::new();
            sim.spawn("producer", |ctx| {
                ctx.send(1, 7, ctx.now() + Dur::from_micros(1));
                Ok(())
            });
            sim.spawn("consumer", move |ctx| {
                ctx.sleep(Dur::from_micros(5))?;
                let before = ctx.now();
                let env = if zero_timeout { ctx.recv_timeout(Dur::ZERO)? } else { ctx.try_recv()? }
                    .expect("message was already due");
                assert_eq!(env.msg, 7);
                assert_eq!(env.from, 0);
                assert_eq!(ctx.now(), before, "popping a queued message must not advance time");
                Ok(())
            });
            if handoff {
                sim.set_parallel(2, Dur::from_micros(1));
                sim.assign_group(0, 0);
                sim.assign_group(1, 1);
            }
            sim.run().unwrap();
        }
    }
}
