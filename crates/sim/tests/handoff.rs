//! Duty-handoff execution mode: the simulation *result* must be
//! bit-identical to the serial coordinator loop — same end time, clocks,
//! event count and full kernel trace — while the host-execution counters
//! show the work was actually driven by the process threads themselves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use repseq_sim::{Dur, Sim, SimError, SimReport};

const RING: usize = 6;
const HOPS: u32 = 40;

/// A token ring with charged compute per hop, optionally under handoff
/// scheduling with each process in its own group and the hop latency as
/// the (exact) lookahead bound.
fn token_ring(handoff: bool) -> SimReport {
    let mut sim = Sim::<u32>::new();
    sim.record_trace(true);
    for i in 0..RING {
        let next = (i + 1) % RING;
        if i == 0 {
            sim.spawn("ring0", move |ctx| {
                ctx.charge(Dur::from_micros(3));
                ctx.send(next, HOPS, ctx.now() + Dur::from_micros(2));
                loop {
                    let env = ctx.recv()?;
                    if env.msg == 0 {
                        return Ok(());
                    }
                    ctx.charge(Dur::from_micros(1));
                    ctx.send(next, env.msg - 1, ctx.now() + Dur::from_micros(2));
                }
            });
        } else {
            sim.spawn_daemon(&format!("ring{i}"), move |ctx| {
                while let Ok(env) = ctx.recv() {
                    ctx.charge(Dur::from_micros(1));
                    if env.msg == 0 {
                        ctx.send(next, 0, ctx.now() + Dur::from_micros(2));
                    } else {
                        ctx.send(next, env.msg - 1, ctx.now() + Dur::from_micros(2));
                    }
                }
                Ok(())
            });
        }
    }
    if handoff {
        sim.set_parallel(2, Dur::from_micros(2));
        for pid in 0..RING {
            sim.assign_group(pid, pid);
        }
    }
    sim.run().unwrap()
}

#[test]
fn handoff_reproduces_the_serial_run_bit_for_bit() {
    let serial = token_ring(false);
    let handoff = token_ring(true);
    assert_eq!(serial.end_time, handoff.end_time);
    assert_eq!(serial.events_processed, handoff.events_processed);
    assert_eq!(serial.proc_clocks, handoff.proc_clocks);
    assert_eq!(serial.mailbox_backlog, handoff.mailbox_backlog);
    let (st, ht) = (serial.trace.as_ref().unwrap(), handoff.trace.as_ref().unwrap());
    assert!(!st.is_empty());
    assert_eq!(st, ht, "kernel pop order must be identical across modes");
}

#[test]
fn handoff_is_driven_by_the_process_threads() {
    let serial = token_ring(false);
    let handoff = token_ring(true);
    // Serial mode never exercises the handoff machinery…
    assert_eq!(serial.exec.handoff_switches, 0);
    assert_eq!(serial.exec.self_continues, 0);
    assert_eq!(serial.exec.windows, 0);
    // …while in handoff mode the ring is one long chain of direct
    // process-to-process transfers: every hop delivery resumes the next
    // process from the previous one's yield.
    assert!(
        handoff.exec.handoff_switches as u32 >= HOPS,
        "expected at least one duty transfer per hop, got {:?}",
        handoff.exec
    );
    // Each hop's checkpoint wake (Polling → Waiting) is consumed inline by
    // whoever holds duty.
    assert!(handoff.exec.inline_events > 0, "no events applied inline: {:?}", handoff.exec);
}

#[test]
fn queued_runs_sprint_past_the_merge_index() {
    // Several deliveries queued for one process: after the first pop, the
    // rest of the run is served from the group queue's deferred head
    // without touching the merge heap — in either execution mode.
    for handoff in [false, true] {
        let mut sim = Sim::<u32>::new();
        sim.spawn("burst-sender", |ctx| {
            for i in 0..8u32 {
                ctx.send(1, i, ctx.now() + Dur::from_micros(10 + i as u64));
            }
            Ok(())
        });
        sim.spawn("burst-receiver", |ctx| {
            for expect in 0..8u32 {
                assert_eq!(ctx.recv()?.msg, expect);
            }
            Ok(())
        });
        if handoff {
            sim.set_parallel(2, Dur::ZERO);
        }
        let report = sim.run().unwrap();
        assert!(
            report.exec.sprint_pops >= 8,
            "burst run should sprint (handoff={handoff}): {:?}",
            report.exec
        );
    }
}

#[test]
fn handoff_detects_deadlock() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("a", |ctx| {
        let _ = ctx.recv()?; // nobody will ever send
        Ok(())
    });
    sim.spawn("b", |ctx| {
        let _ = ctx.recv()?;
        Ok(())
    });
    sim.set_parallel(2, Dur::ZERO);
    match sim.run() {
        Err(SimError::Deadlock { blocked }) => assert_eq!(blocked.len(), 2),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn handoff_stops_daemons_after_primaries_exit() {
    let mut sim = Sim::<u32>::new();
    let served = Arc::new(AtomicU64::new(0));
    let served2 = Arc::clone(&served);
    sim.spawn_daemon("server", move |ctx| {
        while let Ok(env) = ctx.recv() {
            served2.fetch_add(1, Ordering::SeqCst);
            ctx.charge(Dur::from_micros(1));
            ctx.send(env.from, env.msg * 2, ctx.now() + Dur::from_micros(1));
        }
        Ok(())
    });
    sim.spawn("client", |ctx| {
        for i in 0..3u32 {
            ctx.send(0, i, ctx.now() + Dur::from_micros(1));
            let env = ctx.recv()?;
            assert_eq!(env.msg, i * 2);
        }
        Ok(())
    });
    sim.set_parallel(4, Dur::from_micros(1));
    sim.assign_group(0, 0);
    sim.assign_group(1, 1);
    sim.run().unwrap();
    assert_eq!(served.load(Ordering::SeqCst), 3);
}

#[test]
fn handoff_reports_process_panics() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("bang", |ctx| {
        ctx.sleep(Dur::from_micros(1))?;
        panic!("boom");
    });
    sim.spawn("bystander", |ctx| {
        let _ = ctx.recv()?;
        Ok(())
    });
    sim.set_parallel(2, Dur::ZERO);
    match sim.run() {
        Err(SimError::ProcessPanicked { name, .. }) => assert_eq!(name, "bang"),
        other => panic!("expected panic report, got {other:?}"),
    }
}

#[test]
fn self_resume_needs_no_duty_transfer() {
    // A lone process sleeping repeatedly: every wake is a self-resume for
    // the duty holder — the run needs exactly one duty transfer (startup).
    let mut sim = Sim::<u32>::new();
    sim.spawn("loner", |ctx| {
        for _ in 0..10 {
            ctx.sleep(Dur::from_micros(1))?;
        }
        Ok(())
    });
    sim.set_parallel(2, Dur::ZERO);
    let report = sim.run().unwrap();
    assert_eq!(report.exec.handoff_switches, 1, "{:?}", report.exec);
    assert_eq!(report.exec.self_continues, 10, "{:?}", report.exec);
}
