//! Integration tests for the discrete-event engine: ordering, blocking
//! semantics, timeouts, daemons, deadlock detection, determinism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use repseq_sim::{Dur, Sim, SimError, SimTime};

#[test]
fn single_process_advances_time_by_charge() {
    let mut sim = Sim::<()>::new();
    let end = Arc::new(AtomicU64::new(0));
    let end2 = Arc::clone(&end);
    sim.spawn("p", move |ctx| {
        ctx.charge(Dur::from_micros(5));
        ctx.charge(Dur::from_micros(7));
        assert_eq!(ctx.now().nanos(), 12_000);
        ctx.sleep(Dur::from_micros(3))?;
        end2.store(ctx.now().nanos(), Ordering::SeqCst);
        Ok(())
    });
    sim.run().unwrap();
    assert_eq!(end.load(Ordering::SeqCst), 15_000);
}

#[test]
fn message_delivery_time_is_honored() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("sender", |ctx| {
        ctx.charge(Dur::from_micros(1));
        ctx.send(1, 42, ctx.now() + Dur::from_micros(9));
        Ok(())
    });
    sim.spawn("receiver", |ctx| {
        let env = ctx.recv()?;
        assert_eq!(env.msg, 42);
        assert_eq!(env.at.nanos(), 10_000);
        assert_eq!(ctx.now().nanos(), 10_000);
        assert_eq!(env.from, 0);
        Ok(())
    });
    let report = sim.run().unwrap();
    assert_eq!(report.end_time.nanos(), 10_000);
}

#[test]
fn messages_arrive_in_delivery_time_order() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("sender", |ctx| {
        // Sent out of order; must be received in virtual-time order.
        ctx.send(1, 2, SimTime::from_nanos(2_000));
        ctx.send(1, 1, SimTime::from_nanos(1_000));
        ctx.send(1, 3, SimTime::from_nanos(3_000));
        Ok(())
    });
    sim.spawn("receiver", |ctx| {
        for expect in [1, 2, 3] {
            let env = ctx.recv()?;
            assert_eq!(env.msg, expect);
        }
        Ok(())
    });
    sim.run().unwrap();
}

#[test]
fn ties_break_by_send_order() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("sender", |ctx| {
        ctx.send(1, 10, SimTime::from_nanos(1_000));
        ctx.send(1, 20, SimTime::from_nanos(1_000));
        Ok(())
    });
    sim.spawn("receiver", |ctx| {
        assert_eq!(ctx.recv()?.msg, 10);
        assert_eq!(ctx.recv()?.msg, 20);
        Ok(())
    });
    sim.run().unwrap();
}

#[test]
fn recv_returns_queued_message_without_waiting() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("sender", |ctx| {
        ctx.send(1, 7, SimTime::from_nanos(100));
        Ok(())
    });
    sim.spawn("receiver", |ctx| {
        // Compute past the delivery time, then receive: the message was
        // queued while we were busy, so recv must not advance the clock.
        ctx.charge(Dur::from_micros(1));
        let env = ctx.recv()?;
        assert_eq!(env.msg, 7);
        assert_eq!(env.at.nanos(), 100);
        assert_eq!(ctx.now().nanos(), 1_000, "recv of queued message is immediate");
        Ok(())
    });
    sim.run().unwrap();
}

#[test]
fn recv_timeout_times_out_and_then_receives() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("sender", |ctx| {
        ctx.send(1, 5, SimTime::from_nanos(50_000));
        Ok(())
    });
    sim.spawn("receiver", |ctx| {
        let r = ctx.recv_timeout(Dur::from_micros(10))?;
        assert!(r.is_none(), "nothing should arrive in the first 10us");
        assert_eq!(ctx.now().nanos(), 10_000);
        let r = ctx.recv_timeout(Dur::from_micros(100))?;
        let env = r.expect("message must arrive before the second deadline");
        assert_eq!(env.msg, 5);
        assert_eq!(ctx.now().nanos(), 50_000);
        Ok(())
    });
    sim.run().unwrap();
}

#[test]
fn try_recv_sees_only_already_delivered() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("sender", |ctx| {
        ctx.send(1, 1, SimTime::from_nanos(500));
        ctx.send(1, 2, SimTime::from_nanos(2_000));
        Ok(())
    });
    sim.spawn("receiver", |ctx| {
        ctx.charge(Dur::from_nanos(1_000));
        let first = ctx.try_recv()?;
        assert_eq!(first.map(|e| e.msg), Some(1));
        let second = ctx.try_recv()?;
        assert!(second.is_none(), "the 2us message has not arrived at 1us");
        Ok(())
    });
    sim.run().unwrap();
}

#[test]
fn zero_timeout_equals_try_recv() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("p", |ctx| {
        let r = ctx.recv_timeout(Dur::ZERO)?;
        assert!(r.is_none());
        Ok(())
    });
    sim.run().unwrap();
}

#[test]
fn daemon_is_stopped_after_primaries_exit() {
    let mut sim = Sim::<u32>::new();
    let served = Arc::new(AtomicU64::new(0));
    let served2 = Arc::clone(&served);
    sim.spawn_daemon("server", move |ctx| {
        while let Ok(env) = ctx.recv() {
            served2.fetch_add(1, Ordering::SeqCst);
            ctx.charge(Dur::from_micros(1));
            ctx.send(env.from, env.msg * 2, ctx.now() + Dur::from_micros(1));
        }
        Ok(())
    });
    sim.spawn("client", |ctx| {
        for i in 0..3u32 {
            ctx.send(0, i, ctx.now() + Dur::from_micros(1));
            let env = ctx.recv()?;
            assert_eq!(env.msg, i * 2);
        }
        Ok(())
    });
    sim.run().unwrap();
    assert_eq!(served.load(Ordering::SeqCst), 3);
}

#[test]
fn deadlock_is_detected() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("a", |ctx| {
        let _ = ctx.recv()?; // nobody will ever send
        Ok(())
    });
    sim.spawn("b", |ctx| {
        let _ = ctx.recv()?;
        Ok(())
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked }) => {
            assert_eq!(blocked.len(), 2);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn empty_simulation_is_an_error() {
    let sim = Sim::<u32>::new();
    assert!(matches!(sim.run(), Err(SimError::NoPrimaryProcesses)));
}

#[test]
fn daemon_only_blocking_does_not_deadlock() {
    let mut sim = Sim::<u32>::new();
    sim.spawn_daemon("idle-server", |ctx| {
        let _ = ctx.recv(); // will be Stopped
        Ok(())
    });
    sim.spawn("quick", |ctx| {
        ctx.charge(Dur::from_micros(1));
        ctx.sleep(Dur::from_micros(1))?;
        Ok(())
    });
    let report = sim.run().unwrap();
    assert_eq!(report.end_time.nanos(), 2_000);
}

#[test]
fn process_panic_is_reported() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("bang", |ctx| {
        ctx.sleep(Dur::from_micros(1))?;
        panic!("boom");
    });
    match sim.run() {
        Err(SimError::ProcessPanicked { name, .. }) => assert_eq!(name, "bang"),
        other => panic!("expected panic report, got {other:?}"),
    }
}

#[test]
fn report_tracks_clocks_and_events() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("a", |ctx| {
        ctx.sleep(Dur::from_micros(10))?;
        Ok(())
    });
    sim.spawn("b", |ctx| {
        ctx.sleep(Dur::from_micros(20))?;
        Ok(())
    });
    let report = sim.run().unwrap();
    assert_eq!(report.end_time.nanos(), 20_000);
    assert_eq!(report.proc_clocks.len(), 2);
    assert_eq!(report.proc_clocks[0].0, "a");
    assert_eq!(report.proc_clocks[0].1.nanos(), 10_000);
    assert_eq!(report.proc_clocks[1].1.nanos(), 20_000);
    assert!(report.events_processed >= 4);
}

/// A token-ring of processes with charged compute per hop: the same run must
/// produce the same trace every time.
fn token_ring(n: usize, hops: u32) -> Vec<repseq_sim::TraceEntry> {
    let mut sim = Sim::<u32>::new();
    sim.record_trace(true);
    for i in 0..n {
        let next = (i + 1) % n;
        if i == 0 {
            sim.spawn("ring0", move |ctx| {
                ctx.charge(Dur::from_micros(3));
                ctx.send(next, hops, ctx.now() + Dur::from_micros(2));
                loop {
                    let env = ctx.recv()?;
                    if env.msg == 0 {
                        return Ok(());
                    }
                    ctx.charge(Dur::from_micros(1));
                    ctx.send(next, env.msg - 1, ctx.now() + Dur::from_micros(2));
                }
            });
        } else {
            sim.spawn_daemon(&format!("ring{i}"), move |ctx| {
                while let Ok(env) = ctx.recv() {
                    ctx.charge(Dur::from_micros(1));
                    if env.msg == 0 {
                        ctx.send(next, 0, ctx.now() + Dur::from_micros(2));
                    } else {
                        ctx.send(next, env.msg - 1, ctx.now() + Dur::from_micros(2));
                    }
                }
                Ok(())
            });
        }
    }
    sim.run().unwrap().trace.unwrap()
}

#[test]
fn identical_runs_produce_identical_traces() {
    let t1 = token_ring(5, 23);
    let t2 = token_ring(5, 23);
    assert!(!t1.is_empty());
    assert_eq!(t1, t2);
}

#[test]
fn shared_state_between_processes_is_consistent() {
    // Two processes appending to a shared log under a mutex (never held
    // across yields): the log order must follow virtual time.
    let log = Arc::new(Mutex::new(Vec::<(u64, &'static str)>::new()));
    let mut sim = Sim::<()>::new();
    for (name, start, step) in [("even", 0u64, 20u64), ("odd", 10, 20)] {
        let log = Arc::clone(&log);
        sim.spawn(name, move |ctx| {
            ctx.sleep(Dur::from_nanos(start))?;
            for _ in 0..5 {
                log.lock().push((ctx.now().nanos(), name));
                ctx.sleep(Dur::from_nanos(step))?;
            }
            Ok(())
        });
    }
    sim.run().unwrap();
    let log = log.lock();
    let times: Vec<u64> = log.iter().map(|e| e.0).collect();
    let mut sorted = times.clone();
    sorted.sort_unstable();
    assert_eq!(times, sorted, "log must be in virtual-time order");
    assert_eq!(log.len(), 10);
    assert_eq!(log[0], (0, "even"));
    assert_eq!(log[1], (10, "odd"));
}

#[test]
fn send_to_self_works() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("selfie", |ctx| {
        ctx.send(0, 9, ctx.now() + Dur::from_micros(4));
        let env = ctx.recv()?;
        assert_eq!(env.msg, 9);
        assert_eq!(ctx.now().nanos(), 4_000);
        Ok(())
    });
    sim.run().unwrap();
}

#[test]
fn many_processes_scale() {
    // Sanity: a few hundred processes exchanging messages completes quickly.
    let n = 200;
    let mut sim = Sim::<u32>::new();
    sim.spawn("collector", move |ctx| {
        for _ in 0..n {
            ctx.recv()?;
        }
        Ok(())
    });
    for i in 0..n {
        sim.spawn(&format!("w{i}"), move |ctx| {
            ctx.charge(Dur::from_nanos(i as u64));
            ctx.send(0, i, ctx.now() + Dur::from_micros(1));
            Ok(())
        });
    }
    let report = sim.run().unwrap();
    assert!(report.events_processed >= 2 * n as u64);
}
