//! Same-time event determinism: when events from *different* sources
//! collide at one virtual instant, the kernel must drain them in `seq`
//! order (the order their sends executed). This is the invariant any
//! restructuring of the event queue — in particular the per-node-group
//! sharding used by the parallel drain mode — must preserve, so it is
//! pinned here independently of the engine's internal queue layout.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_sim::{Dur, Sim, SimTime, TraceClass};

/// Three senders, staggered in virtual time, each address the same receiver
/// with bursts that all land at the *same* delivery instant. The receiver
/// must observe them ordered by the kernel sequence numbers the sends were
/// assigned — i.e. grouped by sender in sender-execution order — not by any
/// property of the queue they happened to sit in.
#[test]
fn colliding_deliveries_from_multiple_sources_drain_in_seq_order() {
    let collide_at = SimTime::from_nanos(100_000);
    let mut sim = Sim::<u32>::new();
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = Arc::clone(&got);
    sim.spawn("rx", move |ctx| {
        for _ in 0..6 {
            let env = ctx.recv()?;
            assert_eq!(env.at, SimTime::from_nanos(100_000));
            got2.lock().push(env.msg);
        }
        Ok(())
    });
    for (i, delay_us) in [(0u32, 30u64), (1, 10), (2, 20)] {
        sim.spawn(&format!("tx{i}"), move |ctx| {
            // Stagger the send *execution* times; the delivery times all
            // collide. Seq assignment follows execution order: tx1 (10us),
            // tx2 (20us), tx0 (30us).
            ctx.sleep(Dur::from_micros(delay_us))?;
            ctx.send(0, i * 10, collide_at);
            ctx.send(0, i * 10 + 1, collide_at);
            Ok(())
        });
    }
    sim.run().unwrap();
    assert_eq!(*got.lock(), vec![10, 11, 20, 21, 0, 1], "drain order must follow seq tiebreak");
}

/// Same collision, but one copy of the receiver is *busy* past the instant
/// (messages queue in the mailbox) and another blocks into it (messages
/// resume it). Both must observe the identical seq-tiebreak order: mailbox
/// insertion order is drain order.
#[test]
fn queued_and_blocking_receivers_observe_the_same_tie_order() {
    fn run(busy: bool) -> Vec<u32> {
        let collide_at = SimTime::from_nanos(50_000);
        let mut sim = Sim::<u32>::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        sim.spawn("rx", move |ctx| {
            if busy {
                // Compute past the collision instant, then pick up the
                // backlog from the mailbox.
                ctx.charge(Dur::from_micros(90));
            }
            for _ in 0..4 {
                got2.lock().push(ctx.recv()?.msg);
            }
            Ok(())
        });
        for (i, delay_us) in [(0u32, 20u64), (1, 5)] {
            sim.spawn(&format!("tx{i}"), move |ctx| {
                ctx.sleep(Dur::from_micros(delay_us))?;
                ctx.send(0, 100 + i, collide_at);
                ctx.send(0, 200 + i, collide_at);
                Ok(())
            });
        }
        sim.run().unwrap();
        let v = got.lock().clone();
        v
    }
    let blocking = run(false);
    let queued = run(true);
    assert_eq!(blocking, vec![101, 201, 100, 200]);
    assert_eq!(queued, blocking, "mailbox backlog must preserve the seq-tiebreak order");
}

/// A timer wake and a message delivery colliding at the same instant on the
/// same process: the event pushed first (the delivery, scheduled before the
/// receiver ever sleeps) wins the tie, so the sleeping receiver is woken by
/// its timer only after the delivery is already in its mailbox.
#[test]
fn wake_and_delivery_collision_follows_push_order() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("tx", |ctx| {
        // Pushed first: seq below the receiver's sleep wake.
        ctx.send(1, 7, SimTime::from_nanos(10_000));
        Ok(())
    });
    sim.spawn("rx", |ctx| {
        ctx.sleep(Dur::from_micros(10))?; // wake collides with the delivery
        let env = ctx.try_recv()?.expect("delivery with the lower seq must drain first");
        assert_eq!(env.msg, 7);
        assert_eq!(ctx.now().nanos(), 10_000);
        Ok(())
    });
    sim.run().unwrap();
}

/// The kernel-level statement of the invariant, independent of mailbox
/// semantics: the processed-event trace is strictly ordered by
/// `(time, seq)`, and a burst of same-time events spanning several target
/// processes drains with strictly increasing seq.
#[test]
fn trace_is_lexicographic_in_time_then_seq() {
    let mut sim = Sim::<u32>::new();
    sim.record_trace(true);
    // One fan-out sender colliding bursts onto three receivers, interleaved
    // so consecutive seqs alternate targets.
    for r in 0..3usize {
        sim.spawn(&format!("rx{r}"), move |ctx| {
            for _ in 0..4 {
                ctx.recv()?;
            }
            Ok(())
        });
    }
    sim.spawn("tx", |ctx| {
        for round in 0..4u64 {
            for r in 0..3usize {
                ctx.send(r, r as u32, SimTime::from_nanos(20_000 + 1_000 * round));
            }
        }
        Ok(())
    });
    let trace = sim.run().unwrap().trace.unwrap();
    assert!(!trace.is_empty());
    for w in trace.windows(2) {
        assert!(
            (w[0].time, w[0].seq) < (w[1].time, w[1].seq),
            "events must drain in strictly increasing (time, seq): {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    // The colliding burst at t=20us drains as one same-time run of
    // deliveries with increasing seq across *different* target pids.
    let burst: Vec<_> = trace
        .iter()
        .filter(|e| e.time == SimTime::from_nanos(20_000) && e.class == TraceClass::Deliver)
        .collect();
    assert_eq!(burst.len(), 3, "three deliveries collide at t=20us");
    assert_eq!(
        burst.iter().map(|e| e.pid).collect::<Vec<_>>(),
        vec![0, 1, 2],
        "same-time deliveries to distinct processes drain in send (seq) order"
    );
}
