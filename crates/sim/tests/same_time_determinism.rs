//! Same-time event determinism: when events from *different* sources
//! collide at one virtual instant, the kernel must drain them in event-key
//! order — `(time, src_group, seq)`, where `src_group` is the scheduling
//! group of the pushing process and `seq` comes from that group's private
//! counter. The key is assigned at push from state only the pusher's own
//! (serialized) execution touches, so it is identical in every host
//! execution mode — including the window-parallel mode, where worker
//! threads race in wall-clock time but never in key space. This invariant
//! is pinned here independently of the engine's internal queue layout.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_sim::{Dur, Sim, SimTime, TraceClass};

/// Three senders, staggered in virtual time, each address the same receiver
/// with bursts that all land at the *same* delivery instant. The receiver
/// must observe them grouped by source group in group-id order (each
/// process is its own group here), with each sender's burst preserving its
/// send-execution order — not ordered by send execution time across
/// senders, and not by any property of the queue they happened to sit in.
#[test]
fn colliding_deliveries_from_multiple_sources_drain_in_seq_order() {
    let collide_at = SimTime::from_nanos(100_000);
    let mut sim = Sim::<u32>::new();
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = Arc::clone(&got);
    sim.spawn("rx", move |ctx| {
        for _ in 0..6 {
            let env = ctx.recv()?;
            assert_eq!(env.at, SimTime::from_nanos(100_000));
            got2.lock().push(env.msg);
        }
        Ok(())
    });
    for (i, delay_us) in [(0u32, 30u64), (1, 10), (2, 20)] {
        sim.spawn(&format!("tx{i}"), move |ctx| {
            // Stagger the send *execution* times (tx1 at 10us, tx2 at 20us,
            // tx0 at 30us); the delivery times all collide. The tie breaks
            // by source group — tx0 (pid 1), tx1 (pid 2), tx2 (pid 3) —
            // regardless of which send executed first.
            ctx.sleep(Dur::from_micros(delay_us))?;
            ctx.send(0, i * 10, collide_at);
            ctx.send(0, i * 10 + 1, collide_at);
            Ok(())
        });
    }
    sim.run().unwrap();
    assert_eq!(
        *got.lock(),
        vec![0, 1, 10, 11, 20, 21],
        "drain order must follow the (time, src_group, seq) tiebreak"
    );
}

/// Same collision, but one copy of the receiver is *busy* past the instant
/// (messages queue in the mailbox) and another blocks into it (messages
/// resume it). Both must observe the identical key-tiebreak order: mailbox
/// insertion order is drain order.
#[test]
fn queued_and_blocking_receivers_observe_the_same_tie_order() {
    fn run(busy: bool) -> Vec<u32> {
        let collide_at = SimTime::from_nanos(50_000);
        let mut sim = Sim::<u32>::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        sim.spawn("rx", move |ctx| {
            if busy {
                // Compute past the collision instant, then pick up the
                // backlog from the mailbox.
                ctx.charge(Dur::from_micros(90));
            }
            for _ in 0..4 {
                got2.lock().push(ctx.recv()?.msg);
            }
            Ok(())
        });
        for (i, delay_us) in [(0u32, 20u64), (1, 5)] {
            sim.spawn(&format!("tx{i}"), move |ctx| {
                ctx.sleep(Dur::from_micros(delay_us))?;
                ctx.send(0, 100 + i, collide_at);
                ctx.send(0, 200 + i, collide_at);
                Ok(())
            });
        }
        sim.run().unwrap();
        let v = got.lock().clone();
        v
    }
    let blocking = run(false);
    let queued = run(true);
    // tx0 is pid 1 (lower source group) even though tx1's sends executed
    // first in virtual time.
    assert_eq!(blocking, vec![100, 200, 101, 201]);
    assert_eq!(queued, blocking, "mailbox backlog must preserve the key-tiebreak order");
}

/// A timer wake and a message delivery colliding at the same instant on the
/// same process: the sender's group (pid 0) sorts below the receiver's own
/// wake (pushed from pid 1's group), so the sleeping receiver is woken by
/// its timer only after the delivery is already in its mailbox.
#[test]
fn wake_and_delivery_collision_follows_push_order() {
    let mut sim = Sim::<u32>::new();
    sim.spawn("tx", |ctx| {
        // Source group 0: sorts below the receiver's sleep wake.
        ctx.send(1, 7, SimTime::from_nanos(10_000));
        Ok(())
    });
    sim.spawn("rx", |ctx| {
        ctx.sleep(Dur::from_micros(10))?; // wake collides with the delivery
        let env = ctx.try_recv()?.expect("delivery with the lower key must drain first");
        assert_eq!(env.msg, 7);
        assert_eq!(ctx.now().nanos(), 10_000);
        Ok(())
    });
    sim.run().unwrap();
}

/// The kernel-level statement of the invariant, independent of mailbox
/// semantics. The global trace is *not* flatly sorted by key — a process's
/// same-instant follow-up events (e.g. its next receive checkpoint) carry
/// its own group id and can sort below an already-drained key from a
/// higher group — but virtual time never decreases, and each source
/// group's events drain in strictly increasing `(time, seq)`: within one
/// instant, a source's pushes (including a burst spanning several target
/// processes) are consumed in the order that source executed them.
#[test]
fn trace_is_lexicographic_in_time_then_seq() {
    let mut sim = Sim::<u32>::new();
    sim.record_trace(true);
    // One fan-out sender colliding bursts onto three receivers, interleaved
    // so consecutive seqs alternate targets.
    for r in 0..3usize {
        sim.spawn(&format!("rx{r}"), move |ctx| {
            for _ in 0..4 {
                ctx.recv()?;
            }
            Ok(())
        });
    }
    sim.spawn("tx", |ctx| {
        for round in 0..4u64 {
            for r in 0..3usize {
                ctx.send(r, r as u32, SimTime::from_nanos(20_000 + 1_000 * round));
            }
        }
        Ok(())
    });
    let trace = sim.run().unwrap().trace.unwrap();
    assert!(!trace.is_empty());
    for w in trace.windows(2) {
        assert!(
            w[0].time <= w[1].time,
            "virtual time must never decrease: {:?} then {:?}",
            w[0],
            w[1]
        );
        if w[0].src == w[1].src {
            assert!(
                (w[0].time, w[0].seq) < (w[1].time, w[1].seq),
                "one source's events must drain in push order: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
    // The stronger per-source statement over the whole (non-adjacent)
    // subsequence, not just neighboring entries.
    let sources: std::collections::BTreeSet<u64> = trace.iter().map(|e| e.src).collect();
    for s in sources {
        let sub: Vec<_> = trace.iter().filter(|e| e.src == s).collect();
        for w in sub.windows(2) {
            assert!(
                (w[0].time, w[0].seq) < (w[1].time, w[1].seq),
                "source {s} events must drain in (time, seq) order: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
    // The colliding burst at t=20us drains as one same-time run of
    // deliveries with increasing seq across *different* target pids.
    let burst: Vec<_> = trace
        .iter()
        .filter(|e| e.time == SimTime::from_nanos(20_000) && e.class == TraceClass::Deliver)
        .collect();
    assert_eq!(burst.len(), 3, "three deliveries collide at t=20us");
    assert_eq!(
        burst.iter().map(|e| e.pid).collect::<Vec<_>>(),
        vec![0, 1, 2],
        "same-time deliveries from one source drain in send (seq) order"
    );
}
