//! Property tests of the kernel's delivery semantics: for any random send
//! schedule, every receiver observes its messages ordered by
//! (delivery time, send sequence), and the engine clock never runs
//! backwards.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use repseq_sim::{Dur, Sim, SimTime};

/// One scheduled send: (receiver index, delivery time ns, tag).
type Send = (usize, u64, u32);

fn schedule_strategy() -> impl Strategy<Value = Vec<Send>> {
    prop::collection::vec((0usize..3, 0u64..50_000, 0u32..1000), 1..40)
}

fn run_schedule(sends: Vec<Send>) -> Vec<Vec<(u64, u32)>> {
    let n_recv = 3;
    let expected: Vec<usize> =
        (0..n_recv).map(|r| sends.iter().filter(|s| s.0 == r).count()).collect();
    let got = Arc::new(Mutex::new(vec![Vec::new(); n_recv]));
    let mut sim = Sim::<u32>::new();
    for (r, &count) in expected.iter().enumerate() {
        let got = Arc::clone(&got);
        sim.spawn(&format!("recv{r}"), move |ctx| {
            for _ in 0..count {
                let env = ctx.recv()?;
                got.lock()[r].push((env.at.nanos(), env.msg));
            }
            Ok(())
        });
    }
    sim.spawn("sender", move |ctx| {
        for (r, at, tag) in sends {
            ctx.send(r, tag, SimTime::from_nanos(at));
        }
        // Stay alive briefly so zero-time deliveries are unambiguous.
        ctx.sleep(Dur::from_nanos(1))?;
        Ok(())
    });
    sim.run().expect("run failed");
    Arc::try_unwrap(got).unwrap().into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deliveries_are_ordered_per_receiver(sends in schedule_strategy()) {
        let per_recv = run_schedule(sends.clone());
        for (r, msgs) in per_recv.iter().enumerate() {
            // Count matches.
            let want: Vec<&Send> = sends.iter().filter(|s| s.0 == r).collect();
            prop_assert_eq!(msgs.len(), want.len());
            // Non-decreasing delivery times.
            for w in msgs.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "receiver {} saw time go backwards", r);
            }
            // Ties broken by send order: stable sort of the schedule by
            // delivery time must equal the observed tag order.
            let mut sorted = want.clone();
            sorted.sort_by_key(|s| s.1);
            let want_tags: Vec<u32> = sorted.iter().map(|s| s.2).collect();
            let got_tags: Vec<u32> = msgs.iter().map(|m| m.1).collect();
            prop_assert_eq!(got_tags, want_tags, "receiver {} order", r);
        }
    }

    #[test]
    fn runs_are_deterministic(sends in schedule_strategy()) {
        let a = run_schedule(sends.clone());
        let b = run_schedule(sends);
        prop_assert_eq!(a, b);
    }
}
