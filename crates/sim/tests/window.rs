//! Window-parallel conservative execution: correctness pins for the
//! three host execution modes.
//!
//! The engine promises that host scheduling is invisible to the
//! simulation: the serial coordinator, the duty-handoff mode, and the
//! window-parallel worker pool must produce bit-identical reports and
//! traces. These tests force each mode explicitly through
//! [`Sim::set_exec`] and compare, and pin the `(time, src_group, seq)`
//! tiebreak for cross-group collisions that the window barrier's
//! deterministic merge relies on.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_sim::{Dur, HostExec, Sim, SimReport, SimTime};

const LOOKAHEAD: Dur = Dur::from_micros(10);

/// Satellite pin: two sources in *different* groups each push a burst that
/// collides at one virtual instant on a third-group receiver. The pops must
/// follow `(time, src_group, seq)` — grouped by source group in group-id
/// order, each group's burst in its push order — identically in all three
/// exec modes, regardless of which source *executed* its sends first and of
/// how host workers interleave.
#[test]
fn cross_group_same_time_ties_pop_in_key_order_in_all_modes() {
    fn run(exec: HostExec, threads: usize) -> Vec<u32> {
        let collide_at = SimTime::from_nanos(40_000);
        let mut sim = Sim::<u32>::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        let rx = sim.spawn("rx", move |ctx| {
            for _ in 0..4 {
                got2.lock().push(ctx.recv()?.msg);
            }
            Ok(())
        });
        // tx_b executes its sends *before* tx_a in virtual time; the tie
        // still breaks by group id: tx_a (group 1) before tx_b (group 2).
        let tx_a = sim.spawn("tx_a", move |ctx| {
            ctx.sleep(Dur::from_micros(5))?;
            ctx.send(0, 10, collide_at);
            ctx.send(0, 11, collide_at);
            Ok(())
        });
        let tx_b = sim.spawn("tx_b", move |ctx| {
            ctx.sleep(Dur::from_micros(1))?;
            ctx.send(0, 20, collide_at);
            ctx.send(0, 21, collide_at);
            Ok(())
        });
        sim.assign_group(rx, 0);
        sim.assign_group(tx_a, 1);
        sim.assign_group(tx_b, 2);
        sim.set_exec(exec, threads, LOOKAHEAD);
        sim.run().unwrap();
        let v = got.lock().clone();
        v
    }
    let serial = run(HostExec::Serial, 1);
    assert_eq!(serial, vec![10, 11, 20, 21], "(time, src_group, seq) tiebreak");
    assert_eq!(run(HostExec::Handoff, 2), serial, "handoff diverged from serial");
    assert_eq!(run(HostExec::Window, 2), serial, "window-parallel diverged from serial");
    assert_eq!(run(HostExec::Window, 4), serial, "window-parallel (4 threads) diverged");
}

/// A multi-group workload with real cross-group traffic and staggered
/// compute: every node sends bursts to two neighbors with at least the
/// lookahead of latency, while local follow-ups (receive checkpoints)
/// create same-instant events. All three modes must agree on the full
/// report *and* the event trace, entry for entry.
fn mesh_run(exec: HostExec, threads: usize) -> SimReport {
    const N: usize = 8;
    const ROUNDS: u64 = 20;
    let mut sim = Sim::<u64>::new();
    let mut pids = Vec::new();
    for i in 0..N {
        let pid = sim.spawn(&format!("node{i}"), move |ctx| {
            for k in 0..ROUNDS {
                // Uneven compute so group heads drift apart and windows
                // hold varying numbers of active groups.
                ctx.charge(Dur::from_nanos(300 + ((i as u64 * 7 + k * 13) % 11) * 170));
                let jitter = Dur::from_nanos(((i as u64 * 31 + k * 17) % 7) * 250);
                let at = ctx.now() + LOOKAHEAD + jitter;
                ctx.send((i + 1) % N, i as u64 * 1_000 + k, at);
                ctx.send((i + 3) % N, i as u64 * 1_000_000 + k, at + Dur::from_nanos(40));
            }
            let mut sum = 0u64;
            for _ in 0..2 * ROUNDS {
                sum = sum.wrapping_mul(31).wrapping_add(ctx.recv()?.msg);
            }
            // Fold the receive-order-sensitive checksum into the clock so
            // any divergence shows up in the report, not just the trace.
            ctx.charge(Dur::from_nanos(sum % 97));
            Ok(())
        });
        pids.push(pid);
    }
    for (g, pid) in pids.into_iter().enumerate() {
        sim.assign_group(pid, g);
    }
    sim.set_exec(exec, threads, LOOKAHEAD);
    sim.record_trace(true);
    sim.run().unwrap()
}

fn assert_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.end_time, b.end_time, "{what}: end_time diverged");
    assert_eq!(a.events_processed, b.events_processed, "{what}: event count diverged");
    assert_eq!(a.proc_clocks, b.proc_clocks, "{what}: process clocks diverged");
    assert_eq!(a.mailbox_backlog, b.mailbox_backlog, "{what}: mailbox backlog diverged");
    let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
    if let Some(d) = repseq_sim::first_divergence(ta, tb) {
        panic!("{what}: traces diverged at {d:?}");
    }
}

#[test]
fn window_mode_reproduces_serial_bit_for_bit() {
    let serial = mesh_run(HostExec::Serial, 1);
    let handoff = mesh_run(HostExec::Handoff, 2);
    let window2 = mesh_run(HostExec::Window, 2);
    let window4 = mesh_run(HostExec::Window, 4);
    assert_identical(&serial, &handoff, "handoff vs serial");
    assert_identical(&serial, &window2, "window(2) vs serial");
    assert_identical(&serial, &window4, "window(4) vs serial");
    // The host-side counters are the only thing allowed to differ.
    assert!(window4.exec.windows > 0, "window mode must count its windows");
    assert!(
        window4.exec.max_parallel_groups >= 2,
        "the mesh must actually dispatch groups concurrently: {:?}",
        window4.exec
    );
    assert_eq!(serial.exec.windows, 0, "serial mode has no windows");
}

/// Strict ping-pong between two groups with the reply latency equal to the
/// lookahead: every window contains exactly one runnable group, so the
/// coordinator drives each inline and counts a barrier stall — the
/// counter that tells a flat workload from a parallelizable one.
#[test]
fn single_active_windows_are_counted_as_barrier_stalls() {
    let mut sim = Sim::<u32>::new();
    let a = sim.spawn("a", |ctx| {
        for _ in 0..10 {
            ctx.send(1, 1, ctx.now() + LOOKAHEAD);
            ctx.recv()?;
        }
        Ok(())
    });
    let b = sim.spawn("b", |ctx| {
        for _ in 0..10 {
            ctx.recv()?;
            ctx.send(0, 2, ctx.now() + LOOKAHEAD);
        }
        Ok(())
    });
    sim.assign_group(a, 0);
    sim.assign_group(b, 1);
    sim.set_exec(HostExec::Window, 2, LOOKAHEAD);
    let report = sim.run().unwrap();
    assert!(report.exec.windows > 0);
    assert!(
        report.exec.barrier_stalls > 0,
        "a strict ping-pong offers no parallelism; every window stalls: {:?}",
        report.exec
    );
    assert!(report.exec.max_parallel_groups <= 2);
}

/// `set_parallel` with 2+ threads is the window mode; degenerate
/// configurations (no groups, zero lookahead) must quietly fall back to
/// duty-handoff instead of wedging or diverging.
#[test]
fn degenerate_configurations_fall_back_to_handoff() {
    // No assign_group calls: ungrouped.
    let run_ungrouped = || {
        let mut sim = Sim::<u32>::new();
        sim.spawn("p", |ctx| {
            ctx.send(1, 5, ctx.now() + Dur::from_micros(1));
            Ok(())
        });
        sim.spawn("q", |ctx| {
            assert_eq!(ctx.recv()?.msg, 5);
            Ok(())
        });
        sim.set_parallel(4, LOOKAHEAD);
        sim.run().unwrap()
    };
    let r = run_ungrouped();
    // Handoff reuses `windows` for duty bursts; the window-only counters
    // must stay untouched by the fallback.
    assert_eq!(r.exec.max_parallel_groups, 0, "ungrouped runs cannot window");
    assert_eq!(r.exec.barrier_stalls, 0, "ungrouped runs cannot window");

    // Grouped but zero lookahead.
    let mut sim = Sim::<u32>::new();
    let p = sim.spawn("p", |ctx| {
        ctx.send(1, 7, ctx.now() + Dur::from_micros(1));
        Ok(())
    });
    let q = sim.spawn("q", |ctx| {
        assert_eq!(ctx.recv()?.msg, 7);
        Ok(())
    });
    sim.assign_group(p, 0);
    sim.assign_group(q, 1);
    sim.set_parallel(4, Dur::ZERO);
    sim.run().unwrap();
}

/// Panics inside a window must surface as `ProcessPanicked`, with every
/// other process stopped cleanly (no hang at the barrier).
#[test]
fn window_mode_reports_process_panics() {
    let mut sim = Sim::<u32>::new();
    let a = sim.spawn("doomed", |ctx| {
        ctx.sleep(Dur::from_micros(5))?;
        panic!("boom");
    });
    let b = sim.spawn("bystander", |ctx| loop {
        ctx.sleep(Dur::from_micros(3))?;
    });
    sim.assign_group(a, 0);
    sim.assign_group(b, 1);
    sim.set_exec(HostExec::Window, 2, LOOKAHEAD);
    match sim.run() {
        Err(repseq_sim::SimError::ProcessPanicked { name, .. }) => assert_eq!(name, "doomed"),
        other => panic!("expected ProcessPanicked, got {other:?}"),
    }
}

/// Deadlock detection still works when windowing: two grouped processes
/// waiting on each other forever must be reported, not spun on.
#[test]
fn window_mode_detects_deadlock() {
    let mut sim = Sim::<u32>::new();
    let a = sim.spawn("a", |ctx| {
        ctx.recv()?;
        Ok(())
    });
    let b = sim.spawn("b", |ctx| {
        ctx.recv()?;
        Ok(())
    });
    sim.assign_group(a, 0);
    sim.assign_group(b, 1);
    sim.set_exec(HostExec::Window, 2, LOOKAHEAD);
    match sim.run() {
        Err(repseq_sim::SimError::Deadlock { blocked }) => assert_eq!(blocked.len(), 2),
        other => panic!("expected Deadlock, got {other:?}"),
    }
}
