//! # repseq-stats — section-tagged execution statistics
//!
//! The evaluation tables of the PPoPP'01 paper (Tables 1–4) split every
//! measurement by *program section*: time, messages, diff traffic, diff
//! requests, page faults and average response times are reported separately
//! for the sequential and the parallel sections of each application. This
//! crate is the registry those numbers come from.
//!
//! The runtime marks the global program phase with [`Stats::set_section`]
//! (phases are barrier-separated, so a single global tag is exact); the
//! network layer reports every frame with [`Stats::on_message`]; the DSM
//! layer reports page faults, diff requests and request completions. The
//! bench harness takes a [`StatsSnapshot`] at the end of a run and formats
//! the paper's table rows from it.

pub mod host;
mod registry;
mod snapshot;

pub use host::HostCounters;
pub use registry::{MsgClass, NodeId, Section, Stats, StatsRef};
pub use snapshot::{NodeSnapshot, SectionAgg, StatsSnapshot};
