//! Immutable snapshots and the aggregations the paper's tables use.

use repseq_sim::Dur;

use crate::registry::{section_idx, Section};

/// Counters for one (node, section) pair.
///
/// `PartialEq`/`Eq` so whole snapshots can be compared bit-for-bit: the
/// race-detector invariance gate asserts that a run with the detector
/// installed produces exactly the snapshot of the same run without it.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SectionCounters {
    /// Frames sent (multicast counted once).
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Frames that are part of diff traffic (requests, forwarded requests,
    /// replies, flow-control acks).
    pub diff_messages: u64,
    /// Bytes of diff traffic.
    pub diff_bytes: u64,
    /// Null acknowledgments (flow control, §5.4.2).
    pub null_acks: u64,
    /// Requests forwarded through the master (§5.4.2).
    pub forwarded_requests: u64,
    /// Valid-notice messages (§5.4.1).
    pub valid_notice_msgs: u64,
    /// Stale diff replies absorbed (duplicates produced by the
    /// timeout/resend discipline, §5.4.2 — dropped, never applied).
    pub stale_replies: u64,
    /// Page faults taken.
    pub page_faults: u64,
    /// Diff-request operations (faults that fetched diffs).
    pub diff_requests: u64,
    /// Sum of request-to-completion response times.
    pub response_time_total: Dur,
    /// Virtual time stalled waiting for diff replies.
    pub diff_stall: Dur,
    /// Virtual time spent in the valid-notice exchange.
    pub valid_notice_time: Dur,
}

impl SectionCounters {
    fn add(&mut self, o: &SectionCounters) {
        self.messages += o.messages;
        self.bytes += o.bytes;
        self.diff_messages += o.diff_messages;
        self.diff_bytes += o.diff_bytes;
        self.null_acks += o.null_acks;
        self.forwarded_requests += o.forwarded_requests;
        self.valid_notice_msgs += o.valid_notice_msgs;
        self.stale_replies += o.stale_replies;
        self.page_faults += o.page_faults;
        self.diff_requests += o.diff_requests;
        self.response_time_total += o.response_time_total;
        self.diff_stall += o.diff_stall;
        self.valid_notice_time += o.valid_notice_time;
    }
}

/// Per-node snapshot (indexed by `Section`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    pub sections: [SectionCounters; 4],
}

impl NodeSnapshot {
    /// This node's counters for one section kind.
    pub fn section(&self, s: Section) -> &SectionCounters {
        &self.sections[section_idx(s)]
    }
}

/// Cluster-wide aggregate over one section kind.
pub type SectionAgg = SectionCounters;

impl SectionAgg {
    /// Average response time of diff requests, if any were made.
    pub fn avg_response(&self) -> Option<Dur> {
        if self.diff_requests == 0 {
            None
        } else {
            Some(self.response_time_total / self.diff_requests)
        }
    }
}

/// A complete end-of-run snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub nodes: Vec<NodeSnapshot>,
    pub(crate) section_time: [Dur; 4],
    /// Virtual time between `start_measurement` and `end_measurement`.
    pub total_time: Dur,
}

impl StatsSnapshot {
    /// Cluster-wide aggregate for one section kind.
    pub fn agg(&self, s: Section) -> SectionAgg {
        let idx = section_idx(s);
        let mut out = SectionCounters::default();
        for n in &self.nodes {
            out.add(&n.sections[idx]);
        }
        out
    }

    /// Aggregate over the tables' `Seq` rows (master-only sequential plus
    /// replicated sequential execution).
    pub fn seq_agg(&self) -> SectionAgg {
        let mut out = self.agg(Section::Sequential);
        out.add(&self.agg(Section::Replicated));
        out
    }

    /// Aggregate over the tables' `Par` rows.
    pub fn par_agg(&self) -> SectionAgg {
        self.agg(Section::Parallel)
    }

    /// Aggregate over the measured run (the tables' `Total` rows —
    /// sequential plus parallel sections; startup is excluded, as in the
    /// paper).
    pub fn total_agg(&self) -> SectionAgg {
        let mut out = self.seq_agg();
        out.add(&self.agg(Section::Parallel));
        out
    }

    /// Aggregate including startup traffic (not part of the tables).
    pub fn total_agg_with_startup(&self) -> SectionAgg {
        let mut out = self.total_agg();
        out.add(&self.agg(Section::Startup));
        out
    }

    /// Virtual time spent in sequential sections (master-only + replicated).
    pub fn seq_time(&self) -> Dur {
        self.section_time[1] + self.section_time[2]
    }

    /// Virtual time spent in parallel sections.
    pub fn par_time(&self) -> Dur {
        self.section_time[3]
    }

    fn fold_seq<T>(&self, f: impl Fn(&SectionCounters) -> T) -> Vec<T>
    where
        T: std::ops::Add<Output = T> + Copy,
    {
        self.nodes
            .iter()
            .map(|n| {
                f(&n.sections[section_idx(Section::Sequential)])
                    + f(&n.sections[section_idx(Section::Replicated)])
            })
            .collect()
    }

    fn fold_one<T>(&self, s: Section, f: impl Fn(&SectionCounters) -> T) -> Vec<T> {
        self.nodes.iter().map(|n| f(&n.sections[section_idx(s)])).collect()
    }

    /// Per-node page-fault counts for the `Seq` rows; the paper reports the
    /// master's count (Original) or the worst node's (Optimized), i.e. the
    /// maximum.
    pub fn max_node_page_faults_seq(&self) -> u64 {
        self.fold_seq(|c| c.page_faults).into_iter().max().unwrap_or(0)
    }

    /// Maximum over nodes of diff requests in section `s`.
    pub fn max_node_diff_requests(&self, s: Section) -> u64 {
        match s {
            Section::Sequential | Section::Replicated => {
                self.fold_seq(|c| c.diff_requests).into_iter().max().unwrap_or(0)
            }
            _ => self.fold_one(s, |c| c.diff_requests).into_iter().max().unwrap_or(0),
        }
    }

    /// Average over nodes of diff requests in section `s` (the paper's
    /// "avg diff requests" row for parallel sections).
    pub fn avg_node_diff_requests(&self, s: Section) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let v = self.fold_one(s, |c| c.diff_requests);
        v.iter().sum::<u64>() as f64 / self.nodes.len() as f64
    }

    /// Worst per-node time stalled in diff requests in section `s` (the
    /// paper's "the slowest thread spends N seconds in diff requests").
    pub fn max_node_diff_stall(&self, s: Section) -> Dur {
        self.fold_one(s, |c| c.diff_stall).into_iter().max().unwrap_or(Dur::ZERO)
    }

    /// Total time spent exchanging valid notices, maximized over nodes (the
    /// exchange is synchronous, so the max is the program-visible cost).
    pub fn max_node_valid_notice_time(&self) -> Dur {
        self.nodes
            .iter()
            .map(|n| n.sections.iter().map(|c| c.valid_notice_time).fold(Dur::ZERO, |a, b| a + b))
            .fold(Dur::ZERO, Dur::max)
    }
}
