//! Host wall-clock counters for the diff engine and the software MMU.
//!
//! Everything else in this crate measures *simulated* time — the virtual
//! nanoseconds the cost model charges. These counters instead measure the
//! *host* time the simulator itself spends in the diff hot paths, so the
//! bench harness can report how fast the data plane actually runs and
//! track that trajectory across commits (see DESIGN.md §Performance).
//!
//! The counters are process-global atomics: cheap enough to stay enabled
//! unconditionally, and aggregated across every simulated node (the
//! interesting figure is total host work, not its per-node split). They
//! never feed back into the simulation — virtual time is computed from the
//! cost model alone, so determinism is unaffected.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static DIFF_CREATE_NS: AtomicU64 = AtomicU64::new(0);
static DIFF_CREATE_CALLS: AtomicU64 = AtomicU64::new(0);
static DIFF_CREATE_BYTES: AtomicU64 = AtomicU64::new(0);
static DIFF_APPLY_NS: AtomicU64 = AtomicU64::new(0);
static DIFF_APPLY_CALLS: AtomicU64 = AtomicU64::new(0);
static DIFF_APPLY_BYTES: AtomicU64 = AtomicU64::new(0);
static TWIN_POOL_HITS: AtomicU64 = AtomicU64::new(0);
static TWIN_POOL_MISSES: AtomicU64 = AtomicU64::new(0);
static SCRATCH_POOL_HITS: AtomicU64 = AtomicU64::new(0);
static SCRATCH_POOL_MISSES: AtomicU64 = AtomicU64::new(0);
static TLB_HITS: AtomicU64 = AtomicU64::new(0);
static TLB_MISSES: AtomicU64 = AtomicU64::new(0);
static RACE_CHECKS: AtomicU64 = AtomicU64::new(0);
static RACES_FOUND: AtomicU64 = AtomicU64::new(0);

/// A running timer; hand it to one of the `record_*` functions when the
/// measured region ends.
pub struct HostTimer(Instant);

/// Start timing a diff-engine region.
pub fn start() -> HostTimer {
    HostTimer(Instant::now())
}

/// Record a `Diff::create` call: elapsed host time and the number of page
/// bytes scanned (twin + page).
pub fn record_diff_create(t: HostTimer, bytes_scanned: u64) {
    DIFF_CREATE_NS.fetch_add(t.0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    DIFF_CREATE_CALLS.fetch_add(1, Ordering::Relaxed);
    DIFF_CREATE_BYTES.fetch_add(bytes_scanned, Ordering::Relaxed);
}

/// Record a diff-application pass: elapsed host time and payload bytes
/// copied into the page.
pub fn record_diff_apply(t: HostTimer, bytes_copied: u64) {
    DIFF_APPLY_NS.fetch_add(t.0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    DIFF_APPLY_CALLS.fetch_add(1, Ordering::Relaxed);
    DIFF_APPLY_BYTES.fetch_add(bytes_copied, Ordering::Relaxed);
}

/// A twin/scratch buffer was served from the pool (one page allocation
/// avoided).
pub fn twin_pool_hit() {
    TWIN_POOL_HITS.fetch_add(1, Ordering::Relaxed);
}

/// The pool was empty; a fresh page buffer was allocated.
pub fn twin_pool_miss() {
    TWIN_POOL_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// A small scratch vector (write-notice walk, requester election, diff
/// batch) was served from a node's scratch arena — one heap allocation
/// avoided on a protocol hot path.
pub fn scratch_pool_hit() {
    SCRATCH_POOL_HITS.fetch_add(1, Ordering::Relaxed);
}

/// The scratch arena had no banked buffer of the requested shape; a fresh
/// vector was allocated.
pub fn scratch_pool_miss() {
    SCRATCH_POOL_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// A shared-memory access was served from the software TLB (mutex and
/// page walk skipped).
pub fn tlb_hit() {
    TLB_HITS.fetch_add(1, Ordering::Relaxed);
}

/// A shared-memory access missed the software TLB and took the locked
/// page walk (possibly faulting).
pub fn tlb_miss() {
    TLB_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// `n` shared-memory accesses were served from one held translation (a
/// page-run guard): the walk was skipped for each of them, exactly as a
/// hardware TLB would report one hit per access in the bulk loop. The
/// guard's *acquisition* probe reports itself separately via
/// [`tlb_hit`]/[`tlb_miss`].
pub fn tlb_hits_bulk(n: u64) {
    TLB_HITS.fetch_add(n, Ordering::Relaxed);
}

/// The race detector checked one shadow granule against an access.
/// Host-side like everything here: the detector observes the simulation
/// and never feeds back into it, so these counters live outside the
/// deterministic per-node [`crate::Stats`] registry on purpose — the
/// detector-invariance gate compares those snapshots bit-for-bit with the
/// detector on and off.
pub fn race_check() {
    RACE_CHECKS.fetch_add(1, Ordering::Relaxed);
}

/// The race detector found a pair of unordered conflicting accesses.
pub fn race_found() {
    RACES_FOUND.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the host-side diff-engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostCounters {
    /// Host nanoseconds spent in `Diff::create` (including lazy creation
    /// on the serve path).
    pub diff_create_ns: u64,
    pub diff_create_calls: u64,
    /// Page bytes scanned by `Diff::create` (twin + page).
    pub diff_create_bytes: u64,
    /// Host nanoseconds spent applying diffs to pages.
    pub diff_apply_ns: u64,
    pub diff_apply_calls: u64,
    /// Payload bytes copied into pages by diff application.
    pub diff_apply_bytes: u64,
    /// Twin allocations served from the buffer pool (allocations avoided).
    pub twin_pool_hits: u64,
    /// Twin allocations that fell through to the allocator.
    pub twin_pool_misses: u64,
    /// Scratch vectors (notice walks, elections, diff batches) served from
    /// the per-node arena: allocations saved on the protocol hot paths.
    pub scratch_pool_hits: u64,
    /// Scratch takes that fell through to the allocator.
    pub scratch_pool_misses: u64,
    /// Shared-memory accesses served from the software TLB.
    pub tlb_hits: u64,
    /// Accesses that took the locked page walk.
    pub tlb_misses: u64,
    /// Shadow-granule checks performed by the race detector.
    pub race_checks: u64,
    /// Unordered conflicting access pairs the race detector found.
    pub races_found: u64,
}

/// Read the counters accumulated since process start (or the last
/// [`reset`]).
pub fn snapshot() -> HostCounters {
    HostCounters {
        diff_create_ns: DIFF_CREATE_NS.load(Ordering::Relaxed),
        diff_create_calls: DIFF_CREATE_CALLS.load(Ordering::Relaxed),
        diff_create_bytes: DIFF_CREATE_BYTES.load(Ordering::Relaxed),
        diff_apply_ns: DIFF_APPLY_NS.load(Ordering::Relaxed),
        diff_apply_calls: DIFF_APPLY_CALLS.load(Ordering::Relaxed),
        diff_apply_bytes: DIFF_APPLY_BYTES.load(Ordering::Relaxed),
        twin_pool_hits: TWIN_POOL_HITS.load(Ordering::Relaxed),
        twin_pool_misses: TWIN_POOL_MISSES.load(Ordering::Relaxed),
        scratch_pool_hits: SCRATCH_POOL_HITS.load(Ordering::Relaxed),
        scratch_pool_misses: SCRATCH_POOL_MISSES.load(Ordering::Relaxed),
        tlb_hits: TLB_HITS.load(Ordering::Relaxed),
        tlb_misses: TLB_MISSES.load(Ordering::Relaxed),
        race_checks: RACE_CHECKS.load(Ordering::Relaxed),
        races_found: RACES_FOUND.load(Ordering::Relaxed),
    }
}

/// Zero the counters. Benches call this between runs so each measurement
/// stands alone; concurrent simulations in the same process would bleed
/// into each other, so benches run one simulation at a time.
pub fn reset() {
    for c in [
        &DIFF_CREATE_NS,
        &DIFF_CREATE_CALLS,
        &DIFF_CREATE_BYTES,
        &DIFF_APPLY_NS,
        &DIFF_APPLY_CALLS,
        &DIFF_APPLY_BYTES,
        &TWIN_POOL_HITS,
        &TWIN_POOL_MISSES,
        &SCRATCH_POOL_HITS,
        &SCRATCH_POOL_MISSES,
        &TLB_HITS,
        &TLB_MISSES,
        &RACE_CHECKS,
        &RACES_FOUND,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

impl HostCounters {
    /// Difference of two snapshots (for measuring a region between them).
    pub fn since(&self, earlier: &HostCounters) -> HostCounters {
        HostCounters {
            diff_create_ns: self.diff_create_ns - earlier.diff_create_ns,
            diff_create_calls: self.diff_create_calls - earlier.diff_create_calls,
            diff_create_bytes: self.diff_create_bytes - earlier.diff_create_bytes,
            diff_apply_ns: self.diff_apply_ns - earlier.diff_apply_ns,
            diff_apply_calls: self.diff_apply_calls - earlier.diff_apply_calls,
            diff_apply_bytes: self.diff_apply_bytes - earlier.diff_apply_bytes,
            twin_pool_hits: self.twin_pool_hits - earlier.twin_pool_hits,
            twin_pool_misses: self.twin_pool_misses - earlier.twin_pool_misses,
            scratch_pool_hits: self.scratch_pool_hits - earlier.scratch_pool_hits,
            scratch_pool_misses: self.scratch_pool_misses - earlier.scratch_pool_misses,
            tlb_hits: self.tlb_hits - earlier.tlb_hits,
            tlb_misses: self.tlb_misses - earlier.tlb_misses,
            race_checks: self.race_checks - earlier.race_checks,
            races_found: self.races_found - earlier.races_found,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let before = snapshot();
        let t = start();
        record_diff_create(t, 4096 * 2);
        let t = start();
        record_diff_apply(t, 100);
        twin_pool_hit();
        twin_pool_miss();
        scratch_pool_hit();
        scratch_pool_hit();
        scratch_pool_miss();
        tlb_hit();
        tlb_miss();
        race_check();
        race_check();
        race_found();
        let delta = snapshot().since(&before);
        assert_eq!(delta.diff_create_calls, 1);
        assert_eq!(delta.diff_create_bytes, 8192);
        assert_eq!(delta.diff_apply_calls, 1);
        assert_eq!(delta.diff_apply_bytes, 100);
        assert_eq!(delta.twin_pool_hits, 1);
        assert_eq!(delta.twin_pool_misses, 1);
        assert_eq!(delta.scratch_pool_hits, 2);
        assert_eq!(delta.scratch_pool_misses, 1);
        assert_eq!(delta.tlb_hits, 1);
        assert_eq!(delta.tlb_misses, 1);
        assert_eq!(delta.race_checks, 2);
        assert_eq!(delta.races_found, 1);
    }
}
