//! The live counters, updated as the simulation runs.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_sim::{Dur, SimTime};

use crate::snapshot::{NodeSnapshot, SectionCounters, StatsSnapshot};

/// Index of a simulated cluster node (not a kernel pid — each node owns two
/// kernel processes, the application and the protocol handler).
pub type NodeId = usize;

/// The program phase a measurement belongs to, matching the split used by
/// the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Section {
    /// Before the program proper starts (allocation, input generation).
    /// Not reported in the tables.
    #[default]
    Startup,
    /// A sequential section executed by the master only (the "Original"
    /// system) — reported in the tables' `Seq` rows.
    Sequential,
    /// A sequential section executed by every node (replicated sequential
    /// execution, the "Optimized" system) — also a `Seq` row.
    Replicated,
    /// A parallel section — the tables' `Par` rows.
    Parallel,
}

impl Section {
    /// Tables fold `Sequential` and `Replicated` into the same `Seq` rows.
    pub fn is_sequential(self) -> bool {
        matches!(self, Section::Sequential | Section::Replicated)
    }
}

/// Classification of a network frame, used for the tables' per-kind message
/// counts. A multicast frame is counted once (as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// A request for one or more diffs (unicast, or the point-to-point
    /// request a replicated section sends to the master).
    DiffRequest,
    /// The master's multicast re-broadcast of a diff request during
    /// replicated sequential execution (§5.4.2's "forwarded request").
    ForwardedRequest,
    /// A message carrying diffs (reply to a request, unicast or multicast).
    DiffReply,
    /// A multicast acknowledgment carrying no diffs (§5.4.2 flow control).
    NullAck,
    /// Valid-notice exchange at the join before a replicated section.
    ValidNotice,
    /// Lock acquire/release/grant traffic.
    Lock,
    /// Barrier arrivals/departures, fork and join messages.
    Sync,
    /// Whole-page/data broadcast (the hand-inserted broadcast ablation).
    Broadcast,
    /// Anything else.
    Other,
}

impl MsgClass {
    /// Is this frame part of "diff messages" in the tables (requests,
    /// forwarded requests, replies and the flow-control acks that exist
    /// only to move diffs)?
    pub fn is_diff_message(self) -> bool {
        matches!(
            self,
            MsgClass::DiffRequest
                | MsgClass::ForwardedRequest
                | MsgClass::DiffReply
                | MsgClass::NullAck
        )
    }
}

#[derive(Debug, Default, Clone)]
pub(crate) struct NodeCounters {
    /// Per-section counters, indexed by `section_idx`.
    pub sections: [SectionCounters; 4],
}

pub(crate) fn section_idx(s: Section) -> usize {
    match s {
        Section::Startup => 0,
        Section::Sequential => 1,
        Section::Replicated => 2,
        Section::Parallel => 3,
    }
}

struct Inner {
    nodes: Vec<NodeCounters>,
    current: Section,
    /// Wall (virtual) time accumulated per section kind, from the master's
    /// timeline.
    section_time: [Dur; 4],
    section_entered_at: Option<SimTime>,
    total_started_at: Option<SimTime>,
    total_time: Dur,
    /// Set by `end_measurement`: later events are outside the measured run
    /// and are discarded, as the paper's counters cover only the timed
    /// execution.
    frozen: bool,
}

/// The statistics registry for one simulated run. Shared by every layer via
/// [`StatsRef`]. All methods are cheap; the registry is locked only briefly
/// (the simulation serializes processes anyway).
pub struct Stats {
    inner: Mutex<Inner>,
}

/// Shared handle to a [`Stats`] registry.
pub type StatsRef = Arc<Stats>;

impl Stats {
    /// Create a registry for `n_nodes` cluster nodes.
    pub fn new(n_nodes: usize) -> StatsRef {
        Arc::new(Stats {
            inner: Mutex::new(Inner {
                nodes: vec![NodeCounters::default(); n_nodes],
                current: Section::Startup,
                section_time: [Dur::ZERO; 4],
                section_entered_at: None,
                total_started_at: None,
                total_time: Dur::ZERO,
                frozen: false,
            }),
        })
    }

    /// Number of nodes the registry tracks.
    pub fn n_nodes(&self) -> usize {
        self.inner.lock().nodes.len()
    }

    /// Mark the start of measured execution (after startup/initialization).
    /// Sections entered before this call still tag traffic as `Startup`.
    pub fn start_measurement(&self, now: SimTime) {
        let mut i = self.inner.lock();
        i.total_started_at = Some(now);
    }

    /// Mark the end of measured execution; later events are discarded.
    pub fn end_measurement(&self, now: SimTime) {
        let mut i = self.inner.lock();
        if let Some(t0) = i.total_started_at {
            i.total_time = now - t0;
        }
        if let Some(t0) = i.section_entered_at.take() {
            let idx = section_idx(i.current);
            i.section_time[idx] += now - t0;
        }
        i.frozen = true;
    }

    /// Enter a program section at virtual time `now`. Closes the previous
    /// section's timer. Called by the master runtime only.
    pub fn set_section(&self, s: Section, now: SimTime) {
        let mut i = self.inner.lock();
        if let Some(t0) = i.section_entered_at.take() {
            let idx = section_idx(i.current);
            i.section_time[idx] += now - t0;
        }
        i.current = s;
        i.section_entered_at = Some(now);
    }

    /// The section currently being executed.
    pub fn current_section(&self) -> Section {
        self.inner.lock().current
    }

    /// Record a frame sent by `node`. Multicast frames are reported once.
    pub fn on_message(&self, node: NodeId, class: MsgClass, bytes: u64) {
        let mut i = self.inner.lock();
        if i.frozen {
            return;
        }
        let s = i.current;
        let c = &mut i.nodes[node].sections[section_idx(s)];
        c.messages += 1;
        c.bytes += bytes;
        if class.is_diff_message() {
            c.diff_messages += 1;
            c.diff_bytes += bytes;
        }
        match class {
            MsgClass::NullAck => c.null_acks += 1,
            MsgClass::ForwardedRequest => c.forwarded_requests += 1,
            MsgClass::ValidNotice => c.valid_notice_msgs += 1,
            _ => {}
        }
    }

    /// Record a stale diff reply absorbed by `node` (a resend-race
    /// duplicate, or a reply whose fetch was already retired).
    pub fn on_stale_reply(&self, node: NodeId) {
        let mut i = self.inner.lock();
        if i.frozen {
            return;
        }
        let s = i.current;
        i.nodes[node].sections[section_idx(s)].stale_replies += 1;
    }

    /// Record a page fault taken by `node`.
    pub fn on_page_fault(&self, node: NodeId) {
        let mut i = self.inner.lock();
        if i.frozen {
            return;
        }
        let s = i.current;
        i.nodes[node].sections[section_idx(s)].page_faults += 1;
    }

    /// Record one diff-request operation issued by `node` (a fault that had
    /// to fetch diffs), and its response time once served.
    pub fn on_diff_request_complete(&self, node: NodeId, response: Dur) {
        let mut i = self.inner.lock();
        if i.frozen {
            return;
        }
        let s = i.current;
        let c = &mut i.nodes[node].sections[section_idx(s)];
        c.diff_requests += 1;
        c.response_time_total += response;
    }

    /// Record virtual time `node` spent stalled waiting for diff replies.
    pub fn on_diff_stall(&self, node: NodeId, stall: Dur) {
        let mut i = self.inner.lock();
        if i.frozen {
            return;
        }
        let s = i.current;
        i.nodes[node].sections[section_idx(s)].diff_stall += stall;
    }

    /// Record time spent exchanging valid notices (RSE entry overhead).
    pub fn on_valid_notice_time(&self, node: NodeId, d: Dur) {
        let mut i = self.inner.lock();
        if i.frozen {
            return;
        }
        let s = i.current;
        i.nodes[node].sections[section_idx(s)].valid_notice_time += d;
    }

    /// Take an immutable snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        let i = self.inner.lock();
        StatsSnapshot {
            nodes: i.nodes.iter().map(|n| NodeSnapshot { sections: n.sections.clone() }).collect(),
            section_time: i.section_time,
            total_time: i.total_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_timer_accumulates() {
        let s = Stats::new(2);
        s.start_measurement(SimTime::from_nanos(0));
        s.set_section(Section::Sequential, SimTime::from_nanos(0));
        s.set_section(Section::Parallel, SimTime::from_nanos(1_000));
        s.set_section(Section::Sequential, SimTime::from_nanos(5_000));
        s.end_measurement(SimTime::from_nanos(6_000));
        let snap = s.snapshot();
        assert_eq!(snap.seq_time(), Dur::from_nanos(2_000));
        assert_eq!(snap.par_time(), Dur::from_nanos(4_000));
        assert_eq!(snap.total_time, Dur::from_nanos(6_000));
    }

    #[test]
    fn messages_tagged_by_current_section() {
        let s = Stats::new(1);
        s.set_section(Section::Parallel, SimTime::ZERO);
        s.on_message(0, MsgClass::DiffRequest, 100);
        s.on_message(0, MsgClass::DiffReply, 1_000);
        s.on_message(0, MsgClass::Sync, 50);
        s.set_section(Section::Sequential, SimTime::ZERO);
        s.on_message(0, MsgClass::DiffReply, 2_000);
        let snap = s.snapshot();
        let par = snap.agg(Section::Parallel);
        assert_eq!(par.messages, 3);
        assert_eq!(par.bytes, 1_150);
        assert_eq!(par.diff_messages, 2);
        assert_eq!(par.diff_bytes, 1_100);
        let seq = snap.seq_agg();
        assert_eq!(seq.messages, 1);
        assert_eq!(seq.diff_bytes, 2_000);
    }

    #[test]
    fn replicated_folds_into_seq_rows() {
        let s = Stats::new(2);
        s.set_section(Section::Replicated, SimTime::ZERO);
        s.on_message(0, MsgClass::NullAck, 64);
        s.on_message(1, MsgClass::ForwardedRequest, 64);
        let snap = s.snapshot();
        let seq = snap.seq_agg();
        assert_eq!(seq.messages, 2);
        assert_eq!(seq.null_acks, 1);
        assert_eq!(seq.forwarded_requests, 1);
        assert!(Section::Replicated.is_sequential());
        assert!(!Section::Parallel.is_sequential());
    }

    #[test]
    fn response_time_averages() {
        let s = Stats::new(2);
        s.set_section(Section::Parallel, SimTime::ZERO);
        s.on_diff_request_complete(0, Dur::from_micros(100));
        s.on_diff_request_complete(0, Dur::from_micros(300));
        s.on_diff_request_complete(1, Dur::from_micros(200));
        let snap = s.snapshot();
        let agg = snap.agg(Section::Parallel);
        assert_eq!(agg.diff_requests, 3);
        assert_eq!(agg.avg_response().unwrap(), Dur::from_micros(200));
        // Per-node: node 0 made 2 requests, node 1 made 1.
        assert_eq!(snap.max_node_diff_requests(Section::Parallel), 2);
        let avg = snap.avg_node_diff_requests(Section::Parallel);
        assert!((avg - 1.5).abs() < 1e-9);
    }

    #[test]
    fn faults_and_stalls_are_per_node() {
        let s = Stats::new(3);
        s.set_section(Section::Parallel, SimTime::ZERO);
        s.on_page_fault(2);
        s.on_page_fault(2);
        s.on_diff_stall(2, Dur::from_micros(10));
        s.on_diff_stall(1, Dur::from_micros(30));
        let snap = s.snapshot();
        assert_eq!(snap.nodes[2].sections[3].page_faults, 2);
        assert_eq!(snap.max_node_diff_stall(Section::Parallel), Dur::from_micros(30));
    }
}
