//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses* — `Mutex` with
//! non-poisoning `lock()`, `into_inner()` and `get_mut()` — implemented
//! over `std::sync::Mutex`. Poison is ignored (parking_lot has no
//! poisoning): a panicking simulated process already aborts the run at a
//! higher level, so recovering the data is always the right behavior.

use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: the data is still reachable.
        assert_eq!(*m.lock(), 0);
    }
}
