//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it actually uses: `rngs::SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over primitive
//! ranges. The generator is xoshiro256++ (the same family real `SmallRng`
//! uses on 64-bit targets) seeded through SplitMix64, so streams are
//! deterministic and of high quality; the exact stream differs from
//! upstream `rand`, which the workspace never relies on — only on
//! determinism for a given seed.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, generic over the output type via [`SampleRange`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

/// Types sampleable uniformly over their "standard" domain
/// (`[0,1)` for floats, the full range for integers, fair for bool).
pub trait Standard {
    fn standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = f64::standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the (excluded) end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift rejection-free mapping is fine here: spans
                // are tiny relative to 2^64, bias is < 2^-40.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(r) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: usize = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
