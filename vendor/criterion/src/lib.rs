//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches actually use: `Criterion`,
//! `bench_function`, `iter`, `iter_batched`, `benchmark_group`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology (simplified from upstream): each benchmark is warmed up,
//! the iteration count is calibrated so one sample takes a measurable
//! slice of wall-clock, then `sample_size` samples are collected and the
//! median per-iteration time is reported. No plots, no statistics beyond
//! median and min — enough to compare hot-path variants by eye and to
//! feed the JSON trajectory emitter (which does its own timing).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup. The shim treats every variant the
/// same: inputs are pre-built in batches and the routine loop is timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_size: usize,
    calibration_target: Duration,
}

impl Bencher<'_> {
    /// Benchmark `routine` called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate the per-sample iteration count.
        let iters = calibrate(self.calibration_target, |k| {
            let t0 = Instant::now();
            for _ in 0..k {
                black_box(routine());
            }
            t0.elapsed()
        });
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Benchmark `routine` over fresh inputs from `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = calibrate(self.calibration_target, |k| {
            let inputs: Vec<I> = (0..k).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            t0.elapsed()
        });
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

/// Find an iteration count whose sample time reaches `target`.
fn calibrate(target: Duration, mut run: impl FnMut(u64) -> Duration) -> u64 {
    let mut iters: u64 = 1;
    loop {
        let took = run(iters);
        if took >= target || iters >= 1 << 24 {
            return iters.max(1);
        }
        // Aim straight for the target with 2x headroom, growth capped 10x.
        let scale = (target.as_secs_f64() / took.as_secs_f64().max(1e-9) * 2.0).min(10.0);
        iters = ((iters as f64 * scale) as u64).max(iters + 1);
    }
}

fn report(name: &str, samples: &mut [f64]) {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let unit = |ns: f64| -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    };
    println!("{name:<40} median {:>12}/iter (min {})", unit(median), unit(min));
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Upstream builder hook; the shim has no CLI to configure.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            calibration_target: Duration::from_millis(2),
        };
        f(&mut b);
        report(name, &mut samples);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}:");
        BenchmarkGroup { parent: self, sample_size: None }
    }
}

/// A group of related benchmarks (supports `sample_size`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
            calibration_target: Duration::from_millis(2),
        };
        f(&mut b);
        report(&format!("  {name}"), &mut samples);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion { sample_size: 3 };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        let mut g = c.benchmark_group("g");
        g.sample_size(2).bench_function("inner", |b| b.iter(|| 2 * 2));
        g.finish();
    }

    #[test]
    fn calibrate_returns_positive() {
        let iters = calibrate(Duration::from_micros(50), |k| {
            let t0 = Instant::now();
            for _ in 0..k {
                black_box(0u64);
            }
            t0.elapsed()
        });
        assert!(iters >= 1);
    }
}
