//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it actually uses: `crossbeam::channel`'s
//! unbounded MPSC channel (`unbounded`, `Sender`, `Receiver`), backed by
//! `std::sync::mpsc`. The simulation engine uses exactly one receiver per
//! channel, so MPSC semantics are sufficient.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        // Like upstream: no `T: Debug` bound, the payload is elided.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Every sender disconnected and the buffer is drained.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        let tx2 = tx.clone();
        tx2.send(8).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Ok(8));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop((tx, tx2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_send() {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || tx.send("hi").unwrap());
        assert_eq!(rx.recv(), Ok("hi"));
    }
}
