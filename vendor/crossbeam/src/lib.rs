//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it actually uses: `crossbeam::channel`'s
//! unbounded MPMC channel (`unbounded`, `Sender`, `Receiver`). Like the
//! real crate — and unlike `std::sync::mpsc` — both halves are cloneable:
//! the simulation engine's window-worker pool shares one work queue among
//! several consumer threads.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        // Like upstream: no `T: Debug` bound, the payload is elided.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Every sender disconnected and the buffer is drained.
        Disconnected,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        cv: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut i = self.0.lock();
            i.senders -= 1;
            if i.senders == 0 {
                // Unblock receivers waiting for a message that will never
                // come.
                self.0.cv.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut i = self.0.lock();
            if i.receivers == 0 {
                return Err(SendError(value));
            }
            i.queue.push_back(value);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    /// Receiving half of an unbounded channel. Cloneable: clones share one
    /// queue, and each message is delivered to exactly one receiver.
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut i = self.0.lock();
            loop {
                if let Some(v) = i.queue.pop_front() {
                    return Ok(v);
                }
                if i.senders == 0 {
                    return Err(RecvError);
                }
                i = self.0.cv.wait(i).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut i = self.0.lock();
            match i.queue.pop_front() {
                Some(v) => Ok(v),
                None if i.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cv: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        let tx2 = tx.clone();
        tx2.send(8).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Ok(8));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop((tx, tx2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_send() {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || tx.send("hi").unwrap());
        assert_eq!(rx.recv(), Ok("hi"));
    }

    #[test]
    fn multiple_consumers_partition_the_queue() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        for v in 0..100 {
            tx.send(v).unwrap();
        }
        drop(tx);
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        let mut all = got;
        all.extend(h.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }
}
