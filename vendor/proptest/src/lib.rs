//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its property tests actually use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - integer-range, tuple and [`collection::vec`] strategies,
//! - [`Strategy::prop_map`],
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - [`test_runner::Config::with_cases`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name), and
//! there is **no shrinking** — on failure the exact failing input is
//! printed instead, which is enough to reproduce (generation is
//! deterministic) and to paste into a regression test.

use std::fmt::Debug;
use std::ops::Range;

pub mod test_runner {
    /// Runner configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic per-test generator (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier, so each property gets an
        /// independent but reproducible stream.
        pub fn for_test(test_id: &str) -> TestRng {
            // FNV-1a over the id.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type. `Debug + Clone` so failing inputs can be
    /// reported, `'static` so generated values can cross the
    /// `catch_unwind` boundary in the runner.
    type Value: Debug + Clone + 'static;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug + Clone + 'static,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug + Clone + 'static,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// Collection strategies.
pub mod collection {
    use super::test_runner::TestRng;
    use super::Strategy;
    use std::ops::Range;

    /// Lengths accepted by [`vec`]: an exact `usize` or a half-open range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// Generate vectors of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property; a failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let values = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                let reported = values.clone();
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        let ($($arg,)+) = values;
                        $body
                    }),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed; inputs: {:#?}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        reported,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("t1");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
        }
        let vs = Strategy::generate(&prop::collection::vec(0u32..4, 5..9), &mut rng);
        assert!((5..9).contains(&vs.len()));
        assert!(vs.iter().all(|&x| x < 4));
        let exact = Strategy::generate(&prop::collection::vec(0u32..4, 7usize), &mut rng);
        assert_eq!(exact.len(), 7);
    }

    #[test]
    fn generation_is_deterministic_per_test_id() {
        let strat = prop::collection::vec((0usize..10, 0u64..100), 0..20);
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        let mut c = crate::test_runner::TestRng::for_test("other");
        assert_eq!(Strategy::generate(&strat, &mut a), Strategy::generate(&strat, &mut b));
        // Overwhelmingly likely to differ between streams.
        let xs: Vec<_> = (0..4).map(|_| Strategy::generate(&strat, &mut a)).collect();
        let ys: Vec<_> = (0..4).map(|_| Strategy::generate(&strat, &mut c)).collect();
        assert_ne!(xs, ys);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(v in prop::collection::vec(0u8..4, 1..16),
                       (a, b) in (0usize..8, 0u32..5)) {
            prop_assert!(v.len() < 16);
            prop_assert!(a < 8 && b < 5, "a={} b={}", a, b);
            prop_assert_eq!(v.len(), v.iter().map(|&x| x as usize).filter(|&x| x < 4).count());
        }
    }

    proptest! {
        #[test]
        fn prop_map_applies(n in (1usize..5).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && (2..10).contains(&n));
        }
    }
}
